package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"predabs/internal/breaker"
	"predabs/internal/server"
)

// fakeBackend is an in-process stand-in for a backend predabsd: it
// speaks the routes the frontend uses (/readyz, POST /jobs, GET
// /jobs/{id}, GET /jobs/{id}/events) with scripted behavior, so the
// router's dispatch, dedup, failover and adoption logic is exercised
// without real worker processes.
type fakeBackend struct {
	t *testing.T

	mu      sync.Mutex
	submits int
	nextID  int
	jobs    map[string]*fakeJob
	// reject scripts POST /jobs: nil accepts; otherwise it returns the
	// status code and optional Retry-After header value to serve.
	reject func() (int, string)
	auto   bool // complete each job the moment it is submitted

	srv *httptest.Server
}

type fakeJob struct {
	spec    server.JobSpec
	state   string
	exit    int
	outcome string
	stdout  string
	errmsg  string
	events  []server.JobEvent
}

// verdictFor is the deterministic stdout a completed fake run reports:
// derived from the spec alone, so two backends completing the same
// spec produce byte-identical output — the property real slam runs
// guarantee and the failover tests pin.
func verdictFor(spec server.JobSpec) string {
	return "verdict:" + server.SpecHash(spec)[:12] + "\n"
}

func newFakeBackend(t *testing.T, auto bool) *fakeBackend {
	fb := &fakeBackend{t: t, auto: auto, jobs: map[string]*fakeJob{}}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ready\n"))
	})
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		fb.mu.Lock()
		reject := fb.reject
		fb.mu.Unlock()
		if reject != nil {
			status, ra := reject()
			if ra != "" {
				w.Header().Set("Retry-After", ra)
			}
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(map[string]string{"error": "scripted rejection"})
			return
		}
		var spec server.JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		fb.mu.Lock()
		fb.submits++
		fb.nextID++
		id := fmt.Sprintf("bjob-%06d", fb.nextID)
		j := &fakeJob{spec: spec, state: server.StateQueued}
		j.events = append(j.events, server.JobEvent{Seq: 1, TS: 1, Type: server.EventState, State: server.StateQueued})
		fb.jobs[id] = j
		auto := fb.auto
		fb.mu.Unlock()
		if auto {
			fb.complete(id)
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": id})
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		fb.mu.Lock()
		defer fb.mu.Unlock()
		j, ok := fb.jobs[r.PathValue("id")]
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"error": "no such job"})
			return
		}
		json.NewEncoder(w).Encode(server.JobStatus{
			ID: r.PathValue("id"), State: j.state, SpecHash: server.SpecHash(j.spec),
			ExitCode: j.exit, Outcome: j.outcome, Stdout: j.stdout, Error: j.errmsg,
		})
	})
	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		var after uint64
		if v := r.URL.Query().Get("after"); v != "" {
			n, _ := strconv.ParseUint(v, 10, 64)
			after = n
		}
		fb.mu.Lock()
		defer fb.mu.Unlock()
		j, ok := fb.jobs[r.PathValue("id")]
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"error": "no such job"})
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, ev := range j.events {
			if ev.Seq > after {
				enc.Encode(ev)
			}
		}
	})
	fb.srv = httptest.NewServer(mux)
	t.Cleanup(fb.srv.Close)
	return fb
}

func (fb *fakeBackend) url() string { return fb.srv.URL }

func (fb *fakeBackend) submitCount() int {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.submits
}

// firstJobID waits until the backend has received at least one job.
func (fb *fakeBackend) firstJobID() string {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		fb.mu.Lock()
		for id := range fb.jobs {
			fb.mu.Unlock()
			return id
		}
		fb.mu.Unlock()
		time.Sleep(5 * time.Millisecond)
	}
	fb.t.Fatal("backend never received a job")
	return ""
}

func (fb *fakeBackend) setJob(id, state string, exit int, outcome, stdout, errmsg string) {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	j := fb.jobs[id]
	j.state, j.exit, j.outcome, j.stdout, j.errmsg = state, exit, outcome, stdout, errmsg
	j.events = append(j.events, server.JobEvent{
		Seq: uint64(len(j.events) + 1), TS: 2, Type: server.EventState, State: state,
	})
}

func (fb *fakeBackend) complete(id string) {
	fb.mu.Lock()
	spec := fb.jobs[id].spec
	fb.mu.Unlock()
	fb.setJob(id, server.StateDone, 0, "verified", verdictFor(spec), "")
}

func (fb *fakeBackend) failJob(id string) {
	fb.setJob(id, server.StateFailed, 2, "unknown", "", "retry budget exhausted")
}

// testConfig returns a Config with aggressive timings so failover
// scenarios resolve in milliseconds.
func testConfig(t *testing.T, backends ...string) Config {
	return Config{
		DataDir:          t.TempDir(),
		Backends:         backends,
		Dispatchers:      2,
		QueueCap:         16,
		DispatchRetries:  3,
		LeaseTTL:         400 * time.Millisecond,
		PollInterval:     15 * time.Millisecond,
		ReconnectBase:    10 * time.Millisecond,
		ReconnectMax:     60 * time.Millisecond,
		ProbeInterval:    40 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerReopen:    100 * time.Millisecond,
		Logf:             t.Logf,
	}
}

func startFrontend(t *testing.T, cfg Config) *Frontend {
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Shutdown)
	return f
}

func testSpec(source string) server.JobSpec {
	// Normalized up front so verdictFor's hash matches what the
	// frontend (which normalizes at admission) sends the backend.
	s := server.JobSpec{Source: source}
	if err := s.Normalize(); err != nil {
		panic(err)
	}
	return s
}

// awaitState polls the job until it reaches state.
func awaitState(t *testing.T, f *Frontend, id, state string) server.JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var last server.JobStatus
	for time.Now().Before(deadline) {
		st, ok := f.Lookup(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		last = st
		if st.State == state {
			return st
		}
		if st.State == server.StateDone || st.State == server.StateFailed {
			t.Fatalf("job %s reached terminal state %q (outcome %q, error %q), want %q",
				id, st.State, st.Outcome, st.Error, state)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in state %q, want %q", id, last.State, state)
	return last
}

func mustSubmit(t *testing.T, f *Frontend, spec server.JobSpec) string {
	t.Helper()
	id, err := f.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// eventsNDJSON renders a job's synthesized event stream the way the
// HTTP handler would.
func eventsNDJSON(t *testing.T, f *Frontend, id string) []byte {
	t.Helper()
	evs, err := f.Events(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ev := range evs {
		enc.Encode(ev)
	}
	return buf.Bytes()
}

// eventTypes extracts the type sequence of a job's event stream.
func eventTypes(t *testing.T, f *Frontend, id string) []string {
	t.Helper()
	evs, err := f.Events(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	var types []string
	for _, ev := range evs {
		types = append(types, ev.(FleetEvent).Type)
	}
	return types
}

func TestDispatchAndVerdict(t *testing.T) {
	fb := newFakeBackend(t, true)
	f := startFrontend(t, testConfig(t, fb.url()))
	spec := testSpec("void main() {}")
	id := mustSubmit(t, f, spec)
	st := awaitState(t, f, id, server.StateDone)
	if st.Stdout != verdictFor(spec) {
		t.Fatalf("stdout = %q, want %q", st.Stdout, verdictFor(spec))
	}
	if st.Outcome != "verified" || st.ExitCode != 0 {
		t.Fatalf("outcome/exit = %q/%d, want verified/0", st.Outcome, st.ExitCode)
	}
	if st.Backend != fb.url() {
		t.Fatalf("backend = %q, want %q", st.Backend, fb.url())
	}
	if got, want := fmt.Sprint(eventTypes(t, f, id)), "[admit dispatch verdict]"; got != want {
		t.Fatalf("event stream = %v, want %v", got, want)
	}
	if n, err := ValidateEvents(bytes.NewReader(eventsNDJSON(t, f, id))); err != nil {
		t.Fatalf("event stream does not validate after %d records: %v", n, err)
	}
}

// TestDedupSingleFlight pins the content-addressed dedup contract: N
// concurrent submits of one spec cause exactly one backend attempt,
// and every observer receives the identical verdict.
func TestDedupSingleFlight(t *testing.T) {
	fb := newFakeBackend(t, false)
	f := startFrontend(t, testConfig(t, fb.url()))
	spec := testSpec("void main() { A(); }")

	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i], errs[i] = f.Submit(spec)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	fb.complete(fb.firstJobID())
	want := verdictFor(spec)
	for _, id := range ids {
		st := awaitState(t, f, id, server.StateDone)
		if st.Stdout != want {
			t.Fatalf("job %s stdout = %q, want %q", id, st.Stdout, want)
		}
	}
	if got := fb.submitCount(); got != 1 {
		t.Fatalf("backend saw %d submits for %d identical jobs, want exactly 1", got, n)
	}

	// A later identical submit is served from the recorded verdict with
	// no backend attempt at all.
	late := mustSubmit(t, f, spec)
	if st := awaitState(t, f, late, server.StateDone); st.Stdout != want {
		t.Fatalf("late dedup hit stdout = %q, want %q", st.Stdout, want)
	}
	if got := fb.submitCount(); got != 1 {
		t.Fatalf("backend saw %d submits after a post-verdict dedup hit, want 1", got)
	}
}

// TestDedupFailureInvalidation pins the no-cached-unknown rule: a run
// that fails delivers the failure to its subscribers, but the next
// identical submit runs fresh.
func TestDedupFailureInvalidation(t *testing.T) {
	fb := newFakeBackend(t, false)
	f := startFrontend(t, testConfig(t, fb.url()))
	spec := testSpec("void main() { B(); }")

	id := mustSubmit(t, f, spec)
	fb.failJob(fb.firstJobID())
	st := awaitState(t, f, id, server.StateFailed)
	if st.Outcome != "unknown" {
		t.Fatalf("failed run outcome = %q, want unknown", st.Outcome)
	}

	// The entry must be invalidated: an identical submit triggers a
	// fresh backend attempt and can succeed.
	id2 := mustSubmit(t, f, spec)
	deadline := time.Now().Add(5 * time.Second)
	for fb.submitCount() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := fb.submitCount(); got != 2 {
		t.Fatalf("backend saw %d submits after failure invalidation, want 2", got)
	}
	fb.mu.Lock()
	var freshID string
	for jid, j := range fb.jobs {
		if j.state == server.StateQueued {
			freshID = jid
		}
	}
	fb.mu.Unlock()
	fb.complete(freshID)
	if st := awaitState(t, f, id2, server.StateDone); st.Stdout != verdictFor(spec) {
		t.Fatalf("post-invalidation stdout = %q, want %q", st.Stdout, verdictFor(spec))
	}
	// The first job keeps observing ITS run's failure, not the retry's
	// success.
	if st, _ := f.Lookup(id); st.State != server.StateFailed {
		t.Fatalf("original job state = %q after retry succeeded, want failed", st.State)
	}
}

// TestFailoverOnBackendDeath kills the backend that holds a dispatched
// run; the lease expires and the run re-dispatches to the survivor
// with a byte-identical verdict.
func TestFailoverOnBackendDeath(t *testing.T) {
	victim := newFakeBackend(t, false) // accepts, never completes
	survivor := newFakeBackend(t, true)
	f := startFrontend(t, testConfig(t, victim.url(), survivor.url()))
	spec := testSpec("void main() { C(); }")

	id := mustSubmit(t, f, spec)
	victim.firstJobID() // dispatched to the victim (round-robin starts there)
	victim.srv.Close()  // SIGKILL stand-in: every later request is refused

	st := awaitState(t, f, id, server.StateDone)
	if st.Stdout != verdictFor(spec) {
		t.Fatalf("post-failover stdout = %q, want %q", st.Stdout, verdictFor(spec))
	}
	if st.Backend != survivor.url() {
		t.Fatalf("post-failover backend = %q, want %q", st.Backend, survivor.url())
	}
	if got, want := fmt.Sprint(eventTypes(t, f, id)), "[admit dispatch lease dispatch verdict]"; got != want {
		t.Fatalf("event stream = %v, want %v", got, want)
	}
	if n, err := ValidateEvents(bytes.NewReader(eventsNDJSON(t, f, id))); err != nil {
		t.Fatalf("event stream does not validate after %d records: %v", n, err)
	}
}

// TestRetryAfterSuspension pins satellite 1: a 503 + Retry-After from
// a backend suspends it for the advertised window instead of tripping
// its breaker, and the dispatch proceeds to the next node.
func TestRetryAfterSuspension(t *testing.T) {
	shedding := newFakeBackend(t, false)
	shedding.mu.Lock()
	shedding.reject = func() (int, string) { return http.StatusServiceUnavailable, "2" }
	shedding.mu.Unlock()
	healthy := newFakeBackend(t, true)
	f := startFrontend(t, testConfig(t, shedding.url(), healthy.url()))
	spec := testSpec("void main() { D(); }")

	id := mustSubmit(t, f, spec)
	st := awaitState(t, f, id, server.StateDone)
	if st.Backend != healthy.url() {
		t.Fatalf("backend = %q, want the healthy node %q", st.Backend, healthy.url())
	}
	var shedEntry map[string]any
	for _, b := range f.statz()["backends"].([]map[string]any) {
		if b["url"] == shedding.url() {
			shedEntry = b
		}
	}
	if shedEntry == nil || shedEntry["suspended"] != true {
		t.Fatalf("shedding backend not suspended: %v", shedEntry)
	}
	if shedEntry["breaker"] != breaker.Closed {
		t.Fatalf("shedding is not a breaker failure; breaker = %v", shedEntry["breaker"])
	}
}

// TestRestartAdoptsDispatchedRun pins the ledger-replay half of the
// tentpole: a frontend that dies between dispatch and verdict restarts,
// finds the backend still running its job, and re-adopts it instead of
// re-dispatching.
func TestRestartAdoptsDispatchedRun(t *testing.T) {
	fb := newFakeBackend(t, false)
	cfg := testConfig(t, fb.url())
	f1 := startFrontend(t, cfg)
	spec := testSpec("void main() { E(); }")
	id := mustSubmit(t, f1, spec)
	bid := fb.firstJobID()
	f1.Shutdown() // in-flight run stays journaled

	fb.complete(bid) // the backend finished while the frontend was down

	f2 := startFrontend(t, cfg)
	st, ok := f2.Lookup(id)
	if !ok {
		t.Fatalf("job %s lost across restart", id)
	}
	if !st.Resumed {
		t.Fatalf("replayed job not marked resumed: %+v", st)
	}
	st = awaitState(t, f2, id, server.StateDone)
	if st.Stdout != verdictFor(spec) {
		t.Fatalf("adopted stdout = %q, want %q", st.Stdout, verdictFor(spec))
	}
	if fb.submitCount() != 1 {
		t.Fatalf("backend saw %d submits, want 1 (adoption must not re-dispatch)", fb.submitCount())
	}
	if got, want := fmt.Sprint(eventTypes(t, f2, id)), "[admit dispatch adopt verdict]"; got != want {
		t.Fatalf("event stream = %v, want %v", got, want)
	}
}

// TestRestartRecoversVerdicts: completed runs survive restarts, and a
// dedup hit after the restart is served from the replayed verdict.
func TestRestartRecoversVerdicts(t *testing.T) {
	fb := newFakeBackend(t, true)
	cfg := testConfig(t, fb.url())
	f1 := startFrontend(t, cfg)
	spec := testSpec("void main() { F(); }")
	id := mustSubmit(t, f1, spec)
	want := awaitState(t, f1, id, server.StateDone).Stdout
	f1.Shutdown()

	f2 := startFrontend(t, cfg)
	st, ok := f2.Lookup(id)
	if !ok || st.State != server.StateDone || st.Stdout != want {
		t.Fatalf("replayed verdict = %+v (ok %v), want done with stdout %q", st, ok, want)
	}
	id2 := mustSubmit(t, f2, spec)
	if st := awaitState(t, f2, id2, server.StateDone); st.Stdout != want {
		t.Fatalf("post-restart dedup stdout = %q, want %q", st.Stdout, want)
	}
	if fb.submitCount() != 1 {
		t.Fatalf("backend saw %d submits, want 1 (replayed verdict must serve dedup)", fb.submitCount())
	}
}

// TestQueueFullSheds: admission beyond QueueCap is refused with
// ErrQueueFull and leaves no trace.
func TestQueueFullSheds(t *testing.T) {
	fb := newFakeBackend(t, false)
	cfg := testConfig(t, fb.url())
	cfg.Dispatchers = 1
	cfg.QueueCap = 1
	f := startFrontend(t, cfg)

	mustSubmit(t, f, testSpec("void main() { G0(); }")) // taken by the dispatcher
	fb.firstJobID()
	mustSubmit(t, f, testSpec("void main() { G1(); }")) // fills the queue
	if _, err := f.Submit(testSpec("void main() { G2(); }")); err != server.ErrQueueFull {
		t.Fatalf("submit beyond QueueCap: err = %v, want ErrQueueFull", err)
	}
	// The shed spec must not linger in the dedup table: submitting it
	// again after drain must be admissible.
	if f.runs.size() != 2 {
		t.Fatalf("dedup table holds %d entries after shed, want 2", f.runs.size())
	}
}

func TestHandlerEndToEnd(t *testing.T) {
	fb := newFakeBackend(t, true)
	f := startFrontend(t, testConfig(t, fb.url()))
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	spec := testSpec("void main() { H(); }")

	body, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || out.ID == "" {
		t.Fatalf("POST /jobs = %d %+v, want 202 with an id", resp.StatusCode, out)
	}
	awaitState(t, f, out.ID, server.StateDone)

	resp, err = http.Get(srv.URL + "/jobs/" + out.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	n, verr := ValidateEvents(resp.Body)
	resp.Body.Close()
	if verr != nil {
		t.Fatalf("served event stream invalid after %d records: %v", n, verr)
	}
	if n == 0 {
		t.Fatal("served event stream empty")
	}

	if resp, err = http.Get(srv.URL + "/jobs/nope/events"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("events for unknown job = %d, want 404", resp.StatusCode)
		}
	}
	if resp, err = http.Get(srv.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/readyz = %d, want 200", resp.StatusCode)
		}
	}
}
