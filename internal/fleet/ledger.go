package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"predabs/internal/checkpoint"
	"predabs/internal/server"
)

// fleetMagic stamps the frontend's durable ledger (format 1). The
// framing underneath is checkpoint.Log's CRC discipline: a SIGKILL
// mid-append loses at most the record being written, and a restart
// replays exactly the records that were durable.
const fleetMagic = "PREDABSFLT1\x00"

// LedgerName is the fleet ledger's file name inside the frontend data
// directory.
const LedgerName = "fleet.predabs"

// Fleet ledger record types. The ordering discipline mirrors the
// single-node daemon's ledger: every externally visible transition is
// journaled durably BEFORE the in-memory state changes, so a frontend
// killed at any commit point restarts into a state it already promised.
const (
	// RecAdmit: a job was accepted. Carries the full spec on the first
	// admit of a content key; dedup joins (Dedup=true) reference the
	// run already admitted under the same key.
	RecAdmit = "admit"
	// RecDispatch: the key's run was submitted to a backend, which
	// returned a backend-local job ID. Dispatch is the 1-based count of
	// dispatches across the run's lifetime (restarts included).
	RecDispatch = "dispatch"
	// RecLease: the run's backend lease changed; the only transition
	// journaled is Lease="expired" (heartbeats stopped, the backend was
	// declared dead, or an adoption probe failed), which detaches the
	// run from Backend/BackendID and licenses a re-dispatch.
	RecLease = "lease"
	// RecAdopt: after a frontend restart, the replayed backend job was
	// probed, its spec hash matched the run's key, and the frontend
	// re-attached to it instead of re-dispatching.
	RecAdopt = "adopt"
	// RecVerdict: the run finished. State is StateDone (a backend
	// verdict, byte-identical stdout recorded) or StateFailed (dispatch
	// budget exhausted; outcome "unknown" — the sound retreat). A done
	// verdict stays reusable for later identical submits; a failed one
	// invalidates the dedup entry so the next submit runs fresh.
	RecVerdict = "verdict"
	// RecSnapshot: a compacted terminal run. Written only by the
	// restart-time ledger fold (never by live appends): it replaces the
	// run's dispatch/lease/adopt records plus its verdict with ONE
	// record carrying the verdict payload, the original verdict's Seq
	// and TS, and Dropped = how many intermediate records were elided —
	// the explicit truncation declaration that keeps the synthesized
	// per-job event streams resumable (see synthesizeEvents). The run's
	// creating admit survives the fold with its Spec stripped (a
	// terminal run is never re-dispatched), and dedup admits survive
	// verbatim (they anchor the joined jobs' streams).
	RecSnapshot = "snapshot"
)

// Record is one fleet ledger entry. Seq is assigned at append time and
// is dense and strictly increasing across frontend restarts; per-job
// event streams are synthesized from these records (see events.go).
type Record struct {
	Seq  uint64 `json:"seq"`
	TS   int64  `json:"ts"` // unix nanoseconds
	Type string `json:"type"`
	// Job is the frontend job ID (admit records only; every other
	// record is keyed by the content address and applies to all jobs
	// deduplicated onto the run).
	Job string `json:"job,omitempty"`
	// Key is the run's content address: server.SpecHash of the
	// normalized spec.
	Key string `json:"key,omitempty"`
	// Spec is the full job spec; present only on the admit that created
	// the run (Dedup=false), so replay can re-dispatch it.
	Spec *server.JobSpec `json:"spec,omitempty"`
	// Dedup marks an admit that joined an existing run.
	Dedup bool `json:"dedup,omitempty"`
	// Backend is the backend base URL; BackendID the backend-local job
	// ID (dispatch/lease/adopt records).
	Backend   string `json:"backend,omitempty"`
	BackendID string `json:"backend_id,omitempty"`
	// Dispatch is the 1-based dispatch ordinal (dispatch records).
	Dispatch int `json:"dispatch,omitempty"`
	// Lease is "expired" on lease records.
	Lease string `json:"lease,omitempty"`
	// Verdict payload (verdict and snapshot records).
	State    string `json:"state,omitempty"`
	ExitCode int    `json:"exit_code,omitempty"`
	Outcome  string `json:"outcome,omitempty"`
	Stdout   string `json:"stdout,omitempty"`
	Detail   string `json:"detail,omitempty"`
	// Dropped (snapshot records) counts the dispatch/lease/adopt
	// records the compaction elided between the run's creating admit
	// and its verdict. Event synthesis advances the per-job sequence by
	// Dropped before emitting the verdict, so a client resuming with
	// ?after=N lands exactly where the uncompacted stream would have
	// put it.
	Dropped uint64 `json:"dropped,omitempty"`
}

// CrashEnv names the test-only environment variable that SIGKILLs the
// frontend immediately after a chosen ledger append becomes durable,
// for the fleet-chaos harness. Value "<type>:<n>" kills the process
// after the n'th (1-based) record of that type is on disk — e.g.
// "dispatch:1" dies right after the first dispatch commit, the exact
// point where the frontend has promised a backend attempt it has not
// yet observed.
const CrashEnv = "PREDABS_FLEET_CRASH"

// fleetLedger owns the framed log plus the in-memory record list the
// event synthesizer reads. Appends are serialized under mu; Seq is
// assigned from the replayed maximum so restarts never duplicate one.
type fleetLedger struct {
	mu      sync.Mutex
	log     *checkpoint.Log
	seq     uint64
	records []Record // every durable record, replayed + appended

	compactions    int64 // restart-time snapshot folds performed (0 or 1)
	reclaimedBytes int64 // bytes reclaimed by the fold

	crashType  string // CrashEnv hook
	crashAfter int
	crashSeen  int
}

// replayRun is one content-addressed run folded out of the ledger. spec
// is zero for a compacted terminal run (its creating admit was stripped
// — the run will never be re-dispatched); key is always present.
type replayRun struct {
	key        string
	spec       server.JobSpec
	dispatches int
	backend    string // last dispatch/adopt target; "" after lease expiry
	backendID  string
	verdict    *Record // terminal verdict or snapshot, nil while in flight
}

// replayJob is one admitted frontend job in admit order. admitSeq is
// the job's own admit record; runStart the creating admit of the run
// it joined — the event synthesizer's window anchors (see events.go).
type replayJob struct {
	id       string
	key      string
	dedup    bool
	admitSeq uint64
	runStart uint64
}

// replayState is the fold of a full ledger replay. Runs are keyed by
// their creating-admit sequence, not by content key: a failed run may
// be replaced by a fresh one under the same key, and the jobs that
// joined the failed run must keep observing ITS verdict, not the
// replacement's.
type replayState struct {
	jobs     []replayJob
	runs     map[uint64]*replayRun // creating-admit seq -> run
	runStart map[string]uint64     // key -> live run's creating admit seq
}

// openFleetLedger opens (or creates) dir's fleet ledger, folding every
// durable record into the returned replay state. A bad-magic file is a
// *checkpoint.CorruptError surfaced to the caller; a torn tail is
// truncated by checkpoint.OpenLog with a warning; a device read error
// fails the open (never truncates good records).
//
// When snapshotBytes > 0 and the replayed log exceeds it, terminal runs
// are folded in place: each keeps its admits (creating admit stripped
// of its spec) plus one RecSnapshot record, while in-flight runs keep
// every record verbatim. The rewrite lands under an atomic rename; on
// any rewrite failure the full log is kept and served unchanged.
func openFleetLedger(fsys checkpoint.FS, dir string, snapshotBytes int64) (*fleetLedger, *replayState, error) {
	l := &fleetLedger{}
	if v := os.Getenv(CrashEnv); v != "" {
		typ, n, ok := strings.Cut(v, ":")
		if !ok {
			return nil, nil, fmt.Errorf("%s: %q: want \"<type>:<n>\"", CrashEnv, v)
		}
		after, err := strconv.Atoi(n)
		if err != nil || after < 1 {
			return nil, nil, fmt.Errorf("%s: %q: want a positive count", CrashEnv, v)
		}
		l.crashType, l.crashAfter = typ, after
	}
	path := filepath.Join(dir, LedgerName)
	log, seq, records, st, err := replayFleetLedger(fsys, path)
	if err != nil {
		return nil, nil, err
	}
	if snapshotBytes > 0 && log.Size() > snapshotBytes {
		if frames, elided := compactFleetFrames(records, st); elided > 0 {
			before := log.Size()
			if cerr := log.Close(); cerr != nil {
				return nil, nil, cerr
			}
			if rerr := checkpoint.RewriteLog(fsys, path, fleetMagic, frames); rerr != nil {
				// Compaction is an optimization; the full log is still the
				// truth. Reopen it and keep serving.
				log, seq, records, st, err = replayFleetLedger(fsys, path)
				if err != nil {
					return nil, nil, fmt.Errorf("fleet ledger: reopen after failed compaction (%v): %w", rerr, err)
				}
			} else {
				log, seq, records, st, err = replayFleetLedger(fsys, path)
				if err != nil {
					return nil, nil, err
				}
				l.compactions = 1
				l.reclaimedBytes = before - log.Size()
			}
		}
	}
	l.log, l.seq, l.records = log, seq, records
	return l, st, nil
}

// replayFleetLedger opens path and folds every durable record.
func replayFleetLedger(fsys checkpoint.FS, path string) (*checkpoint.Log, uint64, []Record, *replayState, error) {
	var seq uint64
	var records []Record
	st := &replayState{runs: map[uint64]*replayRun{}, runStart: map[string]uint64{}}
	log, err := checkpoint.OpenLogFS(fsys, path, fleetMagic,
		func(payload []byte) {
			var rec Record
			if json.Unmarshal(payload, &rec) != nil {
				return
			}
			if rec.Seq > seq {
				seq = rec.Seq
			}
			records = append(records, rec)
			st.fold(rec)
		})
	if err != nil {
		return nil, 0, nil, nil, err
	}
	return log, seq, records, st, nil
}

// compactFleetFrames rebuilds the ledger's frame list with every
// terminal run folded: its creating admit kept spec-less, its dedup
// admits kept verbatim, its dispatch/lease/adopt records elided, and
// its verdict replaced by a RecSnapshot declaring the elision. Records
// of in-flight runs — and any record the fold could not attribute —
// survive byte-identically. Global sequence numbers are preserved (the
// compacted log has declared gaps, never renumbering), so restarts
// continue the sequence and synthesized event streams keep their
// pre-compaction numbering. Returns the frames and how many records
// were elided or shrunk; 0 means compaction would not reclaim anything.
func compactFleetFrames(records []Record, st *replayState) ([][]byte, int) {
	terminal := map[uint64]bool{}
	for start, rr := range st.runs {
		if rr.verdict != nil {
			terminal[start] = true
		}
	}
	cur := map[string]uint64{}     // key -> creating admit seq at this point in the log
	dropped := map[uint64]uint64{} // creating admit seq -> elided record count
	var frames [][]byte
	elided := 0
	appendRec := func(rec Record) {
		payload, err := json.Marshal(rec)
		if err != nil {
			return // unmarshalable records were skipped at replay too
		}
		frames = append(frames, payload)
	}
	for _, rec := range records {
		switch rec.Type {
		case RecAdmit:
			if !rec.Dedup {
				cur[rec.Key] = rec.Seq
				if terminal[rec.Seq] && rec.Spec != nil {
					rec.Spec = nil // a terminal run is never re-dispatched
					elided++
				}
			}
			appendRec(rec)
		case RecDispatch, RecLease, RecAdopt:
			start := cur[rec.Key]
			if terminal[start] {
				dropped[start]++
				elided++
				continue
			}
			appendRec(rec)
		case RecVerdict:
			if start := cur[rec.Key]; terminal[start] && dropped[start] > 0 {
				rec.Type = RecSnapshot
				rec.Dropped = dropped[start]
			}
			appendRec(rec)
		default: // RecSnapshot from an earlier fold, or future types: keep
			appendRec(rec)
		}
	}
	return frames, elided
}

// fold applies one replayed record to the state.
func (st *replayState) fold(rec Record) {
	switch rec.Type {
	case RecAdmit:
		if !rec.Dedup && rec.Key != "" {
			// The creating admit (re)starts the key's run: a fresh spec
			// after a failed verdict replaces the invalidated entry. A
			// spec-less creating admit is a compacted terminal run (its
			// snapshot record follows); the run keeps a zero spec, which
			// is safe because it is never re-dispatched.
			r := &replayRun{key: rec.Key}
			if rec.Spec != nil {
				r.spec = *rec.Spec
			}
			st.runs[rec.Seq] = r
			st.runStart[rec.Key] = rec.Seq
		}
		st.jobs = append(st.jobs, replayJob{id: rec.Job, key: rec.Key, dedup: rec.Dedup,
			admitSeq: rec.Seq, runStart: st.runStart[rec.Key]})
	case RecDispatch:
		if r := st.live(rec.Key); r != nil {
			r.dispatches = rec.Dispatch
			r.backend, r.backendID = rec.Backend, rec.BackendID
		}
	case RecAdopt:
		if r := st.live(rec.Key); r != nil {
			r.backend, r.backendID = rec.Backend, rec.BackendID
		}
	case RecLease:
		if r := st.live(rec.Key); r != nil {
			r.backend, r.backendID = "", ""
		}
	case RecVerdict, RecSnapshot:
		if r := st.live(rec.Key); r != nil {
			rec := rec
			r.verdict = &rec
		}
	}
}

// live returns key's current run during the fold.
func (st *replayState) live(key string) *replayRun {
	return st.runs[st.runStart[key]]
}

// append durably writes one record, assigns its sequence number, and
// retains it for event synthesis. The CrashEnv hook fires AFTER the
// fsync, so the chaos harness always dies with the record on disk —
// the restart must honor it.
func (l *fleetLedger) append(rec Record) (Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	rec.Seq = l.seq
	if rec.TS == 0 {
		rec.TS = time.Now().UnixNano()
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return Record{}, err
	}
	if err := l.log.Append(payload); err != nil {
		return Record{}, err
	}
	l.records = append(l.records, rec)
	if rec.Type == l.crashType {
		l.crashSeen++
		if l.crashSeen >= l.crashAfter {
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // never continue past the crash point
		}
	}
	return rec, nil
}

// snapshot returns the durable record list (shared backing array; the
// slice is append-only, so a snapshot's prefix never mutates).
func (l *fleetLedger) snapshot() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records[:len(l.records):len(l.records)]
}

// size reports the ledger's on-disk byte size (metrics/statz).
func (l *fleetLedger) size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.log.Size()
}

// degradedErr reports the sticky persistence failure poisoning the
// ledger, nil while healthy. Once set, every future append fails fast
// with the same error; the frontend sheds new admissions but keeps
// serving lookups and in-flight runs from memory.
func (l *fleetLedger) degradedErr() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.log.Err()
}

func (l *fleetLedger) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.log.Close()
}
