// Disk-chaos tests for the fleet ledger: restart-time snapshot folds
// preserve every job's verdict and the exact event-stream sequences
// clients resumed against, injected write faults flip the frontend to
// persistence-degraded shedding (never a wrong verdict), and a torn
// ledger tail repairs on reopen.
package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"predabs/internal/faultinject"
	"predabs/internal/server"
)

// verdictSeqOf returns the Seq and Dropped of the verdict event in a
// job's synthesized stream.
func verdictSeqOf(t *testing.T, f *Frontend, id string) (uint64, uint64) {
	t.Helper()
	evs, err := f.Events(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		fe := ev.(FleetEvent)
		if fe.Type == RecVerdict {
			return fe.Seq, fe.Dropped
		}
	}
	t.Fatalf("job %s has no verdict event: %v", id, evs)
	return 0, 0
}

// TestDiskChaosFleetLedgerSnapshotFold drives real traffic through a
// frontend, folds the ledger on restart, and checks the compaction
// contract end to end: verdicts and dedup joins survive, every
// synthesized verdict keeps its pre-compaction sequence number behind
// an explicit Dropped declaration, the streams still validate, and a
// second fold finds nothing left to elide.
func TestDiskChaosFleetLedgerSnapshotFold(t *testing.T) {
	fb := newFakeBackend(t, true)
	cfg := testConfig(t, fb.url())
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	specs := []server.JobSpec{
		testSpec("void main() { int a; }"),
		testSpec("void main() { int b; }"),
		testSpec("void main() { int c; }"),
	}
	var ids []string
	for _, spec := range specs {
		id := mustSubmit(t, f, spec)
		awaitState(t, f, id, server.StateDone)
		ids = append(ids, id)
	}
	// A dedup join onto the already-completed first run.
	dedupID := mustSubmit(t, f, specs[0])
	awaitState(t, f, dedupID, server.StateDone)
	ids = append(ids, dedupID)

	type before struct {
		status server.JobStatus
		vseq   uint64
	}
	pre := map[string]before{}
	for _, id := range ids {
		st, ok := f.Lookup(id)
		if !ok {
			t.Fatalf("job %s missing before restart", id)
		}
		vseq, dropped := verdictSeqOf(t, f, id)
		if dropped != 0 {
			t.Fatalf("job %s declares a compaction gap before any compaction", id)
		}
		pre[id] = before{status: st, vseq: vseq}
	}
	f.Shutdown()
	ledgerPath := filepath.Join(cfg.DataDir, LedgerName)
	sizeBefore, err := os.Stat(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}

	cfg.LedgerSnapshotBytes = 1
	f2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart with fold: %v", err)
	}
	sizeAfter, err := os.Stat(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	if sizeAfter.Size() >= sizeBefore.Size() {
		t.Fatalf("fold did not shrink the ledger: %d -> %d bytes", sizeBefore.Size(), sizeAfter.Size())
	}
	for _, id := range ids {
		st, ok := f2.Lookup(id)
		if !ok {
			t.Fatalf("job %s lost by the fold", id)
		}
		want := pre[id].status
		if st.State != want.State || st.Outcome != want.Outcome ||
			st.Stdout != want.Stdout || st.ExitCode != want.ExitCode {
			t.Fatalf("job %s verdict changed across the fold:\n  got  %+v\n  want %+v", id, st, want)
		}
		vseq, dropped := verdictSeqOf(t, f2, id)
		if vseq != pre[id].vseq {
			t.Fatalf("job %s verdict seq %d after fold, was %d — resumed cursors would skew",
				id, vseq, pre[id].vseq)
		}
		if dropped == 0 {
			t.Fatalf("job %s verdict declares no gap although the fold elided its dispatch", id)
		}
		// A client already caught up to the elided records resumes onto
		// exactly the verdict, no duplicate, no silent gap.
		resumed, err := f2.Events(id, vseq-1)
		if err != nil {
			t.Fatal(err)
		}
		if len(resumed) != 1 || resumed[0].(FleetEvent).Type != RecVerdict {
			t.Fatalf("job %s resume at %d = %v, want exactly the verdict", id, vseq-1, resumed)
		}
		if n, err := ValidateEvents(bytes.NewReader(eventsNDJSON(t, f2, id))); err != nil {
			t.Fatalf("job %s stream invalid after fold (%d records): %v", id, n, err)
		}
	}
	// New work continues past the fold with fresh IDs and valid streams.
	newID := mustSubmit(t, f2, testSpec("void main() { int d; }"))
	awaitState(t, f2, newID, server.StateDone)
	for _, id := range ids {
		if newID == id {
			t.Fatalf("job ID %s recycled after the fold", newID)
		}
	}
	if n, err := ValidateEvents(bytes.NewReader(eventsNDJSON(t, f2, newID))); err != nil {
		t.Fatalf("post-fold stream invalid (%d records): %v", n, err)
	}
	f2.Shutdown()

	// Idempotence: the folded ledger has no terminal churn left.
	sizeFolded, _ := os.Stat(ledgerPath)
	f3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f3.Shutdown()
	sizeThird, _ := os.Stat(ledgerPath)
	// The third open may fold the post-fold job's records, but never the
	// already-folded ones: the size can only shrink by that one run.
	if sizeThird.Size() > sizeFolded.Size() {
		t.Fatalf("re-open grew the ledger: %d -> %d", sizeFolded.Size(), sizeThird.Size())
	}
}

// TestDiskChaosFleetLedgerDegradedShedsAndRecovers fills the disk under
// the fleet ledger while real dispatches race: the frontend must turn
// sticky-degraded, shed new admissions with ErrPersistDegraded, say so
// on /healthz, and recover every durably admitted job on a healthy
// restart.
func TestDiskChaosFleetLedgerDegradedShedsAndRecovers(t *testing.T) {
	fb := newFakeBackend(t, true)
	cfg := testConfig(t, fb.url())
	ffs := faultinject.NewFS(nil, faultinject.FSConfig{
		FailWriteAfter: 9, Sticky: true, PathFilter: LedgerName,
	})
	cfg.FS = ffs
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var acked []string
	var degraded error
	for i := 0; i < 50; i++ {
		id, err := f.Submit(testSpec(fmt.Sprintf("void main() { int x%d; }", i)))
		if err != nil {
			degraded = err
			break
		}
		acked = append(acked, id)
	}
	if degraded == nil {
		t.Fatalf("disk full never surfaced across 50 submits (injected %v)", ffs.Injected())
	}
	if !errors.Is(degraded, server.ErrPersistDegraded) {
		t.Fatalf("shed error = %v, want server.ErrPersistDegraded", degraded)
	}
	if len(acked) == 0 {
		t.Fatal("no job acked before the fault; schedule fired too early")
	}
	if _, err := f.Submit(testSpec("void main() { int late; }")); !errors.Is(err, server.ErrPersistDegraded) {
		t.Fatalf("post-fault submit = %v, want sticky ErrPersistDegraded", err)
	}
	for _, id := range acked {
		if _, ok := f.Lookup(id); !ok {
			t.Fatalf("acked job %s lost while degraded", id)
		}
	}
	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var health map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if deg, _ := health["persistence_degraded"].(bool); !deg {
		t.Fatalf("healthz hides the degradation: %v", health)
	}
	f.Shutdown()

	cfg.FS = nil
	f2, err := New(cfg)
	if err != nil {
		t.Fatalf("healthy restart: %v", err)
	}
	defer f2.Shutdown()
	for _, id := range acked {
		st, ok := f2.Lookup(id)
		if !ok {
			t.Fatalf("acked job %s lost across restart", id)
		}
		// Every recovered job either already has its verdict or will be
		// re-driven; it must never carry a fabricated one.
		if st.State == server.StateDone && st.Stdout == "" {
			t.Fatalf("job %s done with empty stdout after recovery: %+v", id, st)
		}
	}
}

// TestDiskChaosFleetTornTailRepairedOnReopen crash-tears the fleet
// ledger's tail and reopens: the torn frame is discarded with a repair,
// the intact prefix (and its verdicts) survives, and the frontend keeps
// admitting.
func TestDiskChaosFleetTornTailRepairedOnReopen(t *testing.T) {
	fb := newFakeBackend(t, true)
	cfg := testConfig(t, fb.url())
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec("void main() { int torn; }")
	id := mustSubmit(t, f, spec)
	want := awaitState(t, f, id, server.StateDone)
	f.Shutdown()

	path := filepath.Join(cfg.DataDir, LedgerName)
	fh, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	fh.Write([]byte("\xde\xadtorn-fleet-frame"))
	fh.Close()

	f2, err := New(cfg)
	if err != nil {
		t.Fatalf("reopen over a torn tail: %v", err)
	}
	defer f2.Shutdown()
	st, ok := f2.Lookup(id)
	if !ok || st.State != server.StateDone || st.Stdout != want.Stdout {
		t.Fatalf("verdict lost across torn-tail repair: ok=%v %+v", ok, st)
	}
	id2 := mustSubmit(t, f2, testSpec("void main() { int again; }"))
	awaitState(t, f2, id2, server.StateDone)
}
