package fleet

import (
	"sync"
	"time"
)

// lease is the liveness contract between a dispatched run and its
// backend: every successful poll of the backend's durable event stream
// renews it, and a watcher whose lease runs out declares the backend
// dead for this run — journals the expiry and re-dispatches. The TTL
// therefore bounds how long a SIGKILLed backend can hold a run hostage.
type lease struct {
	ttl time.Duration
	now func() time.Time // test seam

	mu       sync.Mutex
	deadline time.Time
}

func newLease(ttl time.Duration) *lease {
	l := &lease{ttl: ttl, now: time.Now}
	l.deadline = l.now().Add(ttl)
	return l
}

// renew extends the lease by its TTL from now.
func (l *lease) renew() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.deadline = l.now().Add(l.ttl)
}

// expired reports whether the lease has lapsed.
func (l *lease) expired() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.now().After(l.deadline)
}
