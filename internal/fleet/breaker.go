package fleet

import (
	"math/rand"
	"sync"
	"time"
)

// Breaker states, exposed in /statz and the per-backend breaker-state
// gauge (0 closed, 1 half-open, 2 open).
const (
	BreakerClosed   = "closed"
	BreakerHalfOpen = "half-open"
	BreakerOpen     = "open"
)

// breaker is one backend's circuit breaker. It trips open after
// `threshold` consecutive failures; while open every Allow() is refused
// until a jittered reopen delay elapses, after which exactly one caller
// is admitted as the half-open probe. A probe success closes the
// breaker, a probe failure re-opens it for another jittered delay. The
// jitter (±50% around the configured reopen delay) decorrelates a
// fleet of frontends hammering the same recovering backend.
type breaker struct {
	threshold int
	reopen    time.Duration
	now       func() time.Time // test seam; time.Now outside tests

	mu       sync.Mutex
	state    string
	fails    int       // consecutive failures while closed
	until    time.Time // open: when the half-open probe unlocks
	probing  bool      // half-open: the single probe slot is taken
	tripped  int64     // cumulative close->open transitions
	reopened int64     // cumulative open->closed recoveries
}

func newBreaker(threshold int, reopen time.Duration) *breaker {
	return &breaker{
		threshold: threshold,
		reopen:    reopen,
		now:       time.Now,
		state:     BreakerClosed,
	}
}

// allow reports whether a request may be sent. In the half-open state
// only the first caller gets true (the probe); everyone else is
// refused until the probe resolves via success or fail.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Before(b.until) {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a request that reached the backend and got a sane
// response. It resets the failure streak and closes a half-open
// breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.reopened++
	}
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
}

// fail records a request the backend never served (connection refused,
// timeout, transport error). The breaker trips on the threshold'th
// consecutive failure, and a failed half-open probe re-opens
// immediately.
func (b *breaker) fail() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.trip()
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
		}
	}
}

// trip opens the breaker for a jittered reopen delay. Caller holds mu.
func (b *breaker) trip() {
	b.state = BreakerOpen
	b.probing = false
	b.fails = 0
	b.tripped++
	// ±50% jitter around the configured delay, same shape as the
	// supervisor's retry backoff.
	d := b.reopen/2 + time.Duration(rand.Int63n(int64(b.reopen)))
	b.until = b.now().Add(d)
}

// snapshot returns the current state name and transition counters.
func (b *breaker) snapshot() (state string, tripped, reopened int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.tripped, b.reopened
}
