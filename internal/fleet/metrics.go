package fleet

import (
	"predabs/internal/breaker"
	"predabs/internal/metrics"
)

// fleetMetrics is the frontend's instrument set. A nil registry makes
// every instrument nil, which the metrics package treats as a
// zero-allocation no-op — the fleet costs nothing when -metrics is off.
type fleetMetrics struct {
	submitted *metrics.Counter // jobs admitted (incl. dedup joins)
	deduped   *metrics.Counter // admits collapsed onto an existing run
	shed      *metrics.Counter // admissions refused with queue-full
	completed *metrics.Counter // runs finished with a backend verdict
	failed    *metrics.Counter // runs failed (dispatch budget exhausted)
	adopted   *metrics.Counter // backend jobs re-adopted after a restart
	expired   *metrics.Counter // leases declared expired (failovers)

	shedDegraded      *metrics.Counter // admissions refused while persistence-degraded
	ledgerCompactions *metrics.Counter // restart-time ledger snapshot folds
	ledgerReclaimed   *metrics.Counter // bytes reclaimed by ledger folds

	dispatches  *metrics.CounterVec // fleet_backend_dispatch_total{backend}
	errors      *metrics.CounterVec // fleet_backend_errors_total{backend}
	backendShed *metrics.CounterVec // fleet_backend_shed_total{backend}

	breakerState *metrics.GaugeVec // 0 closed, 1 half-open, 2 open
	backendReady *metrics.GaugeVec // last /readyz probe result

	inflight *metrics.Gauge // runs admitted but not yet terminal
	leases   *metrics.Gauge // runs currently holding a backend lease
	dedupLen *metrics.Gauge // live dedup-table entries
}

func newFleetMetrics(r *metrics.Registry) fleetMetrics {
	if r == nil {
		return fleetMetrics{}
	}
	return fleetMetrics{
		submitted: r.Counter("fleet_jobs_submitted_total", "Jobs admitted by the frontend, dedup joins included."),
		deduped:   r.Counter("fleet_jobs_deduped_total", "Admits collapsed onto an existing content-addressed run."),
		shed:      r.Counter("fleet_jobs_shed_total", "Admissions refused because the dispatch queue was full."),
		completed: r.Counter("fleet_runs_completed_total", "Runs finished with a backend verdict."),
		failed:    r.Counter("fleet_runs_failed_total", "Runs failed after exhausting the dispatch budget."),
		adopted:   r.Counter("fleet_jobs_adopted_total", "Backend jobs re-adopted after a frontend restart."),
		expired:   r.Counter("fleet_leases_expired_total", "Backend leases declared expired (failovers)."),

		shedDegraded: r.Counter("fleet_jobs_shed_degraded_total",
			"Admissions refused while the fleet ledger is persistence-degraded."),
		ledgerCompactions: r.Counter("fleet_ledger_compactions_total",
			"Fleet ledger snapshot folds performed at restart replay."),
		ledgerReclaimed: r.Counter("fleet_ledger_compaction_reclaimed_bytes_total",
			"Fleet ledger bytes reclaimed by snapshot folds."),

		dispatches:  r.CounterVec("fleet_backend_dispatch_total", "Dispatches per backend.", "backend"),
		errors:      r.CounterVec("fleet_backend_errors_total", "Transport errors per backend.", "backend"),
		backendShed: r.CounterVec("fleet_backend_shed_total", "Retry-After shed responses per backend.", "backend"),

		breakerState: r.GaugeVec("fleet_backend_breaker_state", "Breaker state per backend: 0 closed, 1 half-open, 2 open.", "backend"),
		backendReady: r.GaugeVec("fleet_backend_ready", "Last /readyz probe result per backend.", "backend"),

		inflight: r.Gauge("fleet_runs_inflight", "Runs admitted but not yet terminal."),
		leases:   r.Gauge("fleet_active_leases", "Runs currently holding a backend lease."),
		dedupLen: r.Gauge("fleet_dedup_entries", "Live content-addressed dedup entries."),
	}
}

// breakerGaugeValue maps a breaker state name to its gauge encoding.
func breakerGaugeValue(state string) int64 {
	switch state {
	case breaker.HalfOpen:
		return 1
	case breaker.Open:
		return 2
	default:
		return 0
	}
}
