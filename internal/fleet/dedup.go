package fleet

import (
	"sync"

	"predabs/internal/server"
)

// Run states. A run is the unit of backend work: all jobs admitted
// with the same content key observe one run's verdict.
const (
	runPending  = "pending"  // queued for a dispatcher (fresh or after lease expiry)
	runWatching = "watching" // dispatched; heartbeat stream being consumed
	runDone     = "done"     // backend verdict recorded
	runFailed   = "failed"   // dispatch budget exhausted; outcome unknown
)

// run is one content-addressed verification run. Jobs hold a pointer
// to their run forever; the dedup table holds one only until the run
// fails (failure invalidation — see runTable.complete).
type run struct {
	key  string // server.SpecHash of spec
	spec server.JobSpec

	mu         sync.Mutex
	state      string
	backend    string // backend base URL while dispatched
	backendID  string // backend-local job ID while dispatched
	dispatches int    // 1-based dispatch count across frontend restarts
	resumed    bool   // re-enqueued from the ledger after a restart
	exit       int
	outcome    string
	stdout     string
	errmsg     string

	done chan struct{} // closed exactly once, at the terminal transition
}

func newRun(key string, spec server.JobSpec) *run {
	return &run{key: key, spec: spec, state: runPending, done: make(chan struct{})}
}

// terminal reports whether the run has reached done or failed.
func (r *run) terminal() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state == runDone || r.state == runFailed
}

// runTable is the content-addressed dedup index with single-flight
// semantics: the first Submit of a key creates the run, concurrent and
// later identical submits join it, and exactly one dispatcher drives
// it. Completed successful runs stay in the table, so a later
// identical submit is answered from the recorded verdict without a
// backend attempt.
type runTable struct {
	mu   sync.Mutex
	runs map[string]*run
}

func newRunTable() *runTable {
	return &runTable{runs: map[string]*run{}}
}

// admit returns the run for key, creating it when absent. created
// reports whether the caller must journal the spec and enqueue the run
// for dispatch.
func (t *runTable) admit(key string, spec server.JobSpec) (r *run, created bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if r := t.runs[key]; r != nil {
		return r, false
	}
	r = newRun(key, spec)
	t.runs[key] = r
	return r, true
}

// complete records the run's terminal verdict and wakes every waiter.
// A failed run is removed from the table — "unknown by exhaustion"
// must never be served from cache to a future submit (cached-unknown
// poisoning); the jobs already joined still observe the failure
// through their run pointer.
func (t *runTable) complete(r *run, state string, exit int, outcome, stdout, errmsg string) {
	r.mu.Lock()
	r.state = state
	r.exit, r.outcome, r.stdout, r.errmsg = exit, outcome, stdout, errmsg
	r.mu.Unlock()
	if state == runFailed {
		t.mu.Lock()
		if t.runs[r.key] == r {
			delete(t.runs, r.key)
		}
		t.mu.Unlock()
	}
	close(r.done)
}

// size returns the number of live dedup entries.
func (t *runTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.runs)
}
