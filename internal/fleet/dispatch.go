package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"predabs/internal/server"
)

// dispatcher drains the run queue. Each run is driven to its terminal
// verdict by exactly one dispatcher — dedup's single-flight guarantee.
func (f *Frontend) dispatcher() {
	defer f.wg.Done()
	for {
		select {
		case <-f.quit:
			return
		case r := <-f.queue:
			f.drive(r)
		}
	}
}

// drive takes a run from admitted (or replayed) to its verdict:
// adoption of a surviving backend job when resuming, otherwise
// dispatch, then the heartbeat watch; every lease expiry journals and
// re-dispatches until the budget runs out.
func (f *Frontend) drive(r *run) {
	// Adoption: a restarted frontend replayed a dispatch (or adopt)
	// record with no verdict. If the backend still runs the job and its
	// spec hash matches our key, re-attach instead of re-running.
	r.mu.Lock()
	backend, bid := r.backend, r.backendID
	r.mu.Unlock()
	if backend != "" && bid != "" {
		if f.tryAdopt(r, backend, bid) {
			if done := f.watch(r, backend, bid); done {
				return
			}
			// watch interrupted by shutdown: leave the run journaled.
			if f.isQuitting() {
				return
			}
		} else if f.isQuitting() {
			return
		}
	}

	for {
		if f.isQuitting() {
			return
		}
		r.mu.Lock()
		dispatches := r.dispatches
		r.mu.Unlock()
		if dispatches >= f.cfg.DispatchRetries {
			f.finishRun(r, runFailed, 2, "unknown", "",
				fmt.Sprintf("fleet: dispatch budget exhausted after %d attempts", dispatches))
			return
		}
		node, bid := f.submitRun(r)
		if node == nil {
			if f.isQuitting() {
				return
			}
			// No backend available right now: jittered pause, then retry
			// without burning a dispatch attempt — an idle fleet is
			// backpressure, not failure.
			f.sleep(f.cfg.ReconnectBase + time.Duration(rand.Int63n(int64(f.cfg.ReconnectBase))))
			continue
		}
		if done := f.watch(r, node.url, bid); done {
			return
		}
		if f.isQuitting() {
			return
		}
	}
}

func (f *Frontend) isQuitting() bool {
	select {
	case <-f.quit:
		return true
	default:
		return false
	}
}

// sleep pauses, returning early on shutdown.
func (f *Frontend) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-f.quit:
	case <-t.C:
	}
}

// tryAdopt probes the backend job a replayed run points at. On a spec
// hash match it journals the adoption and reports true; anything else
// — 404, a recycled directory now running different work, a dead
// backend — journals the lease expiry and reports false, licensing a
// fresh dispatch.
func (f *Frontend) tryAdopt(r *run, backend, bid string) bool {
	reason := ""
	resp, err := f.cfg.Client.Get(backend + "/jobs/" + bid)
	switch {
	case err != nil:
		if n := f.reg.byURL(backend); n != nil {
			n.br.Fail()
		}
		f.met.errors.With(backend).Inc()
		reason = fmt.Sprintf("adopt probe: %v", err)
	case resp.StatusCode != http.StatusOK:
		resp.Body.Close()
		reason = fmt.Sprintf("adopt probe: backend returned %d", resp.StatusCode)
	default:
		var st server.JobStatus
		err := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			reason = fmt.Sprintf("adopt probe: %v", err)
		} else if st.SpecHash != r.key {
			// The backend's ledger was quarantined and the ID recycled
			// for different work: adopting would credit a stranger's
			// verdict to our job.
			reason = "adopt probe: spec hash mismatch (recycled backend job)"
		}
	}
	if reason != "" {
		f.expireLease(r, backend, bid, reason)
		return false
	}
	if _, err := f.led.append(Record{Type: RecAdopt, Key: r.key, Backend: backend, BackendID: bid}); err != nil {
		f.cfg.Logf("fleet ledger: adopt append failed: %v", err)
		f.expireLease(r, backend, bid, "fleet ledger unwritable at adopt")
		return false
	}
	r.mu.Lock()
	r.state = runWatching
	r.mu.Unlock()
	f.met.adopted.Inc()
	f.cfg.Logf("fleet: adopted %s on %s as %s", r.key[:12], backend, bid)
	return true
}

// expireLease journals the lease expiry and detaches the run from its
// backend. This is the single failover commit point: after the record
// is durable the run may be re-dispatched, and a frontend killed
// before it restarts into the adoption probe instead.
func (f *Frontend) expireLease(r *run, backend, bid, reason string) {
	if _, err := f.led.append(Record{Type: RecLease, Key: r.key, Lease: "expired",
		Backend: backend, BackendID: bid, Detail: reason}); err != nil {
		f.cfg.Logf("fleet ledger: lease append failed: %v", err)
	}
	r.mu.Lock()
	r.state = runPending
	r.backend, r.backendID = "", ""
	r.mu.Unlock()
	f.met.expired.Inc()
	f.met.leases.Dec()
	f.cfg.Logf("fleet: lease expired for %s on %s (%s)", r.key[:12], backend, reason)
}

// submitRun offers the run to the fleet: round-robin over available
// backends, honoring Retry-After suspensions and breakers, until one
// accepts. Returns the accepting node and its backend-local job ID,
// or (nil, "") when no backend is currently available.
func (f *Frontend) submitRun(r *run) (*node, string) {
	tried := map[string]bool{}
	for {
		n := f.reg.pick(tried)
		if n == nil {
			return nil, ""
		}
		tried[n.url] = true
		bid, ok := f.submitTo(n, r)
		if !ok {
			continue
		}
		// Journal the dispatch BEFORE believing in it: a frontend killed
		// right after this append re-adopts the backend job on restart —
		// the job is never run twice concurrently and never lost.
		r.mu.Lock()
		dispatch := r.dispatches + 1
		r.mu.Unlock()
		if _, err := f.led.append(Record{Type: RecDispatch, Key: r.key,
			Backend: n.url, BackendID: bid, Dispatch: dispatch}); err != nil {
			f.cfg.Logf("fleet ledger: dispatch append failed: %v", err)
			return nil, ""
		}
		r.mu.Lock()
		r.dispatches = dispatch
		r.backend, r.backendID = n.url, bid
		r.state = runWatching
		r.mu.Unlock()
		f.met.dispatches.With(n.url).Inc()
		f.met.leases.Inc()
		f.cfg.Logf("fleet: dispatched %s to %s as %s (attempt %d)", r.key[:12], n.url, bid, dispatch)
		return n, bid
	}
}

// submitTo POSTs the run's spec to one backend. A 202 wins; a 503
// suspends the node for its Retry-After (the backend is healthy and
// shedding — satellite 1's contract); a transport error feeds the
// breaker.
func (f *Frontend) submitTo(n *node, r *run) (string, bool) {
	body, err := json.Marshal(r.spec)
	if err != nil {
		return "", false
	}
	resp, err := f.cfg.Client.Post(n.url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		n.br.Fail()
		f.met.errors.With(n.url).Inc()
		f.updateNodeGauges(n)
		return "", false
	}
	defer resp.Body.Close()
	n.br.Success() // the backend answered; shedding is not a breaker failure
	f.updateNodeGauges(n)
	switch resp.StatusCode {
	case http.StatusAccepted:
		var out struct {
			ID string `json:"id"`
		}
		if json.NewDecoder(resp.Body).Decode(&out) != nil || out.ID == "" {
			return "", false
		}
		return out.ID, true
	case http.StatusServiceUnavailable:
		d := time.Second
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
				d = time.Duration(secs) * time.Second
			}
		}
		n.suspend(d)
		f.met.backendShed.With(n.url).Inc()
		return "", false
	default:
		// 400 and friends: the backend refused the spec outright. Count
		// it against this node and move on; if every backend refuses,
		// the dispatch budget drains and the run fails unknown.
		f.met.errors.With(n.url).Inc()
		return "", false
	}
}

// watch consumes the backend's durable event stream as the run's
// heartbeat: every successful poll renews the lease, and poll failures
// back off exponentially with jitter (capped — satellite 1) while the
// lease drains. Returns true when the run reached a verdict (or the
// frontend recorded failure), false when the lease expired and the
// caller should re-dispatch.
func (f *Frontend) watch(r *run, backend, bid string) bool {
	n := f.reg.byURL(backend)
	l := newLease(f.cfg.LeaseTTL)
	var cursor uint64
	backoff := f.cfg.ReconnectBase
	for {
		if f.isQuitting() {
			return false
		}
		if l.expired() {
			f.expireLease(r, backend, bid, "heartbeat lease expired")
			return false
		}
		pollStart := time.Now()
		evs, status, err := f.pollEvents(backend, bid, cursor, f.cfg.EventWait)
		switch {
		case err != nil:
			if n != nil {
				n.br.Fail()
				f.updateNodeGauges(n)
			}
			f.met.errors.With(backend).Inc()
			// Jittered exponential reconnect backoff, capped so a
			// recovering backend is re-polled promptly.
			f.sleep(backoff/2 + time.Duration(rand.Int63n(int64(backoff))))
			backoff *= 2
			if backoff > f.cfg.ReconnectMax {
				backoff = f.cfg.ReconnectMax
			}
			continue
		case status == http.StatusNotFound:
			// The backend restarted into a quarantined ledger and no
			// longer knows the job: its work is gone, re-dispatch.
			f.expireLease(r, backend, bid, "backend lost the job (404)")
			return false
		case status != http.StatusOK:
			// Corrupt event log (coded 500) or any other server-side
			// failure: the job's history cannot be trusted, re-dispatch.
			f.expireLease(r, backend, bid, fmt.Sprintf("backend event stream returned %d", status))
			return false
		}
		if n != nil {
			n.br.Success()
			f.updateNodeGauges(n)
		}
		l.renew()
		backoff = f.cfg.ReconnectBase
		terminal := ""
		for _, ev := range evs {
			if ev.Seq > cursor {
				cursor = ev.Seq
			}
			if ev.Type == server.EventState &&
				(ev.State == server.StateDone || ev.State == server.StateFailed) {
				terminal = ev.State
			}
		}
		if terminal != "" {
			if f.harvest(r, backend, bid) {
				return true
			}
			f.expireLease(r, backend, bid, "verdict fetch failed after terminal event")
			return false
		}
		// The long poll blocks server-side until news arrives, so the
		// watcher normally re-polls immediately. Pace only when the
		// backend answered early — events were already pending, or an
		// old backend ignored ?wait= (without this guard that would be
		// a busy loop).
		if f.cfg.EventWait <= 0 || time.Since(pollStart) < f.cfg.EventWait/2 {
			f.sleep(f.cfg.PollInterval)
		}
	}
}

// pollEvents fetches one page of the backend job's event stream,
// long-polling up to wait for news (satellite: push-style event
// subscriptions). Transport errors come back as err; HTTP-level
// outcomes as status.
func (f *Frontend) pollEvents(backend, bid string, after uint64, wait time.Duration) ([]server.JobEvent, int, error) {
	url := fmt.Sprintf("%s/jobs/%s/events?after=%d", backend, bid, after)
	if wait > 0 {
		url += "&wait=" + wait.String()
	}
	resp, err := f.cfg.Client.Get(url)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode, nil
	}
	var evs []server.JobEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev server.JobEvent
		if json.Unmarshal(line, &ev) == nil {
			evs = append(evs, ev)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return evs, http.StatusOK, nil
}

// harvest fetches the terminal backend job status and records the
// verdict. The spec hash gate makes adoption and dispatch symmetric:
// a verdict is credited to our run only if it hashes to our key. The
// backend journals its durable done record before flipping the status
// map, so a status read racing the terminal event may briefly lag —
// harvest re-polls a few times before giving up.
func (f *Frontend) harvest(r *run, backend, bid string) bool {
	for try := 0; try < 5; try++ {
		if try > 0 {
			f.sleep(f.cfg.PollInterval)
			if f.isQuitting() {
				return false
			}
		}
		resp, err := f.cfg.Client.Get(backend + "/jobs/" + bid)
		if err != nil {
			continue
		}
		var st server.JobStatus
		decErr := json.NewDecoder(resp.Body).Decode(&st)
		ok := resp.StatusCode == http.StatusOK
		resp.Body.Close()
		if !ok || decErr != nil || st.SpecHash != r.key {
			continue
		}
		switch st.State {
		case server.StateDone:
			f.met.leases.Dec()
			f.finishRun(r, runDone, st.ExitCode, st.Outcome, st.Stdout, "")
			return true
		case server.StateFailed:
			// The backend exhausted ITS retry budget: outcome unknown
			// is a real (sound) verdict — deliver it to every job on
			// this run, then invalidate the dedup entry so the next
			// identical submit runs fresh (no cached-unknown poisoning).
			f.met.leases.Dec()
			f.finishRun(r, runFailed, st.ExitCode, st.Outcome, "", st.Error)
			return true
		}
	}
	return false
}

// updateNodeGauges refreshes the per-backend breaker and readiness
// gauges after a breaker transition opportunity.
func (f *Frontend) updateNodeGauges(n *node) {
	state, _, _ := n.br.Snapshot()
	f.met.breakerState.With(n.url).Set(breakerGaugeValue(state))
	if n.ready.Load() {
		f.met.backendReady.With(n.url).Set(1)
	} else {
		f.met.backendReady.With(n.url).Set(0)
	}
}
