package fleet

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"predabs/internal/breaker"
)

// node is one backend predabsd the frontend can dispatch to.
type node struct {
	url string // base URL, no trailing slash
	br  *breaker.Breaker

	mu        sync.Mutex
	suspended time.Time // Retry-After backpressure: no dispatches before this

	ready atomic.Bool // last /readyz probe result; optimistic before the first
}

// suspend honors a backend's Retry-After: no dispatch is routed to the
// node until d has elapsed. Distinct from the breaker — a shedding
// backend is healthy and explicitly asked for the pause.
func (n *node) suspend(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	until := time.Now().Add(d)
	if until.After(n.suspended) {
		n.suspended = until
	}
}

func (n *node) isSuspended() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return time.Now().Before(n.suspended)
}

// available reports whether the node may be offered work right now,
// WITHOUT consuming the breaker's half-open probe slot — use it for
// counting and filtering; call br.Allow() only when about to send.
func (n *node) available() bool {
	if n.isSuspended() || !n.ready.Load() {
		return false
	}
	state, _, _ := n.br.Snapshot()
	return state != breaker.Open
}

// registry tracks the fleet's backends: a round-robin pick over the
// available ones, plus a background /readyz prober per node feeding
// the ready bit and the breaker (a probe that cannot connect is a
// breaker failure too, so a dead node trips open without burning
// dispatch attempts on it).
type registry struct {
	nodes  []*node
	rr     atomic.Uint64
	client *http.Client

	probeInterval time.Duration
	quit          chan struct{}
	wg            sync.WaitGroup
}

func newRegistry(urls []string, client *http.Client, threshold int, reopen, probeInterval time.Duration) *registry {
	reg := &registry{client: client, probeInterval: probeInterval, quit: make(chan struct{})}
	for _, u := range urls {
		n := &node{url: u, br: breaker.New(threshold, reopen)}
		n.ready.Store(true)
		reg.nodes = append(reg.nodes, n)
	}
	return reg
}

// start launches one prober goroutine per node.
func (reg *registry) start() {
	for _, n := range reg.nodes {
		n := n
		reg.wg.Add(1)
		go func() {
			defer reg.wg.Done()
			t := time.NewTicker(reg.probeInterval)
			defer t.Stop()
			for {
				reg.probe(n)
				select {
				case <-reg.quit:
					return
				case <-t.C:
				}
			}
		}()
	}
}

func (reg *registry) stop() {
	close(reg.quit)
	reg.wg.Wait()
}

// probe hits the node's /readyz once. 200 marks it ready; a 503 (the
// backend is draining or degraded) marks it not ready without touching
// the breaker; a transport error is a breaker failure — the node is
// unreachable, not merely busy.
func (reg *registry) probe(n *node) {
	resp, err := reg.client.Get(n.url + "/readyz")
	if err != nil {
		n.ready.Store(false)
		n.br.Fail()
		return
	}
	resp.Body.Close()
	n.ready.Store(resp.StatusCode == http.StatusOK)
	if resp.StatusCode == http.StatusOK {
		n.br.Success()
	}
}

// pick returns the next available node round-robin, skipping any in
// the exclude set (backends that already failed this run's current
// dispatch round). The winning node's breaker has admitted the caller
// via allow() — a half-open node hands its single probe slot to the
// dispatch itself. Returns nil when no node is currently available.
func (reg *registry) pick(exclude map[string]bool) *node {
	total := len(reg.nodes)
	for i := 0; i < total; i++ {
		n := reg.nodes[int(reg.rr.Add(1)-1)%total]
		if exclude[n.url] || n.isSuspended() || !n.ready.Load() {
			continue
		}
		if n.br.Allow() {
			return n
		}
	}
	return nil
}

// byURL returns the node for a base URL, or nil.
func (reg *registry) byURL(url string) *node {
	for _, n := range reg.nodes {
		if n.url == url {
			return n
		}
	}
	return nil
}

// healthyCount counts nodes currently available for dispatch.
func (reg *registry) healthyCount() int {
	c := 0
	for _, n := range reg.nodes {
		if n.available() {
			c++
		}
	}
	return c
}
