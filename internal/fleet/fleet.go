// Package fleet implements the predabsd frontend router: a process
// that speaks the same HTTP job API as a single predabsd node but owns
// no workers — it admits jobs, deduplicates them by content address,
// and dispatches each distinct run to one of N backend predabsd nodes,
// surviving the death of any backend (lease-based failover) and of
// itself (a durable ledger replayed on restart).
//
// # Fault model
//
// Backends fail by crashing (SIGKILL, OOM), by becoming unreachable,
// or by shedding load (503 + Retry-After). The frontend fails by
// crashing at any instant. The invariants held across all of these:
//
//   - A job the frontend acknowledged (202 + ID) is never lost: its
//     admit record is durable before the response is written.
//   - A run produces exactly one verdict record, and the verdict's
//     stdout is byte-identical to a direct slam run over the same
//     inputs — re-dispatch after a backend death re-runs the
//     deterministic pipeline, it never stitches partial results.
//   - Dedup never caches failure: a run that exhausts its dispatch
//     budget reports outcome "unknown" to the jobs already joined and
//     is invalidated, so the next identical submit runs fresh.
//   - Degradation retreats to "unknown", never to a wrong verdict.
package fleet

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"predabs/internal/checkpoint"
	"predabs/internal/metrics"
	"predabs/internal/server"
)

// Config parameterizes a Frontend. Zero values select the documented
// defaults.
type Config struct {
	// DataDir holds the durable fleet ledger (required).
	DataDir string
	// Backends are the backend predabsd base URLs (required, >= 1).
	Backends []string
	// Client is the HTTP client for all backend traffic (default: a
	// client with a 10s request timeout).
	Client *http.Client
	// Dispatchers sizes the dispatcher pool (default 4): how many runs
	// are driven concurrently.
	Dispatchers int
	// QueueCap bounds runs admitted but not yet picked up by a
	// dispatcher (default 256); beyond it Submit sheds with
	// server.ErrQueueFull.
	QueueCap int
	// DispatchRetries bounds backend attempts per run across frontend
	// restarts (default 4); exhaustion fails the run with outcome
	// "unknown".
	DispatchRetries int
	// LeaseTTL is how long a dispatched run may go without a successful
	// heartbeat poll before its backend is declared dead (default 15s).
	LeaseTTL time.Duration
	// PollInterval spaces heartbeat polls of a backend's event stream
	// (default 500ms). With EventWait > 0 it only paces polls that the
	// backend answered early (events already pending, or a backend that
	// ignores ?wait=).
	PollInterval time.Duration
	// EventWait is the long-poll window passed as ?wait= on event
	// heartbeat polls: the backend holds the request open until news
	// arrives or the window expires (default min(LeaseTTL/3, 5s); set
	// negative to disable long-polling entirely).
	EventWait time.Duration
	// ReconnectBase / ReconnectMax bound the jittered exponential
	// backoff between failed heartbeat polls (defaults 100ms / 5s).
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// ProbeInterval spaces background /readyz probes (default 2s).
	ProbeInterval time.Duration
	// BreakerThreshold is the consecutive-failure count that trips a
	// backend's circuit breaker (default 3); BreakerReopen the base
	// delay before its half-open probe (default 5s, jittered ±50%).
	BreakerThreshold int
	BreakerReopen    time.Duration
	// AllowJobEnv permits specs carrying Env overrides, mirroring the
	// backend daemon's -allow-job-env flag (the chaos harness needs it).
	AllowJobEnv bool
	// CacheURL is the fleet's shared prover-cache service (predcached)
	// base URL, advertised to clients via /healthz and /statz so
	// operators can point backend workers at the same tier. Optional.
	CacheURL string
	// FS is the filesystem the fleet ledger lives on (default: the real
	// OS filesystem). Tests inject fault-injecting implementations.
	FS checkpoint.FS
	// LedgerSnapshotBytes, when > 0, folds terminal runs into snapshot
	// records at restart replay once the ledger exceeds this size,
	// bounding its growth. 0 disables compaction.
	LedgerSnapshotBytes int64
	// Metrics is the optional instrument registry (nil disables).
	Metrics *metrics.Registry
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

func (c *Config) setDefaults() error {
	if c.DataDir == "" {
		return fmt.Errorf("fleet: DataDir must be set")
	}
	if len(c.Backends) == 0 {
		return fmt.Errorf("fleet: at least one backend is required")
	}
	for i, b := range c.Backends {
		c.Backends[i] = strings.TrimRight(b, "/")
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if c.Dispatchers == 0 {
		c.Dispatchers = 4
	}
	if c.QueueCap == 0 {
		c.QueueCap = 256
	}
	if c.DispatchRetries == 0 {
		c.DispatchRetries = 4
	}
	if c.LeaseTTL == 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.PollInterval == 0 {
		c.PollInterval = 500 * time.Millisecond
	}
	if c.EventWait == 0 {
		// Stay well under both the lease TTL (so empty polls still renew
		// the lease several times per TTL) and the client's request
		// timeout (default 10s).
		c.EventWait = c.LeaseTTL / 3
		if c.EventWait > 5*time.Second {
			c.EventWait = 5 * time.Second
		}
	}
	if c.ReconnectBase == 0 {
		c.ReconnectBase = 100 * time.Millisecond
	}
	if c.ReconnectMax == 0 {
		c.ReconnectMax = 5 * time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerReopen == 0 {
		c.BreakerReopen = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// fjob is one admitted frontend job: an ID bound to a run. Several
// jobs may share a run (dedup).
type fjob struct {
	id       string
	key      string
	dedup    bool
	admitSeq uint64 // ledger seq of this job's admit record
	runStart uint64 // ledger seq of its run's creating admit
	run      *run
}

// Frontend is the fleet router. It implements server.JobAPI, so
// server.APIHandler serves it with the exact routes, JSON shapes and
// error taxonomy of a single-node predabsd.
type Frontend struct {
	cfg Config
	led *fleetLedger
	reg *registry

	mu      sync.Mutex // guards jobs, nextSeq, and queue admission
	jobs    map[string]*fjob
	nextSeq int

	runs     *runTable
	queue    chan *run
	quit     chan struct{}
	wg       sync.WaitGroup
	draining atomic.Bool

	start time.Time
	met   fleetMetrics
}

// New opens (or replays) the fleet ledger in cfg.DataDir, rebuilds
// every admitted job and in-flight run, re-enqueues the in-flight runs
// for adoption or re-dispatch, and starts the health probers and
// dispatcher pool. A frontend SIGKILLed at any commit point restarts
// here into exactly the state it had promised.
func New(cfg Config) (*Frontend, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	led, st, err := openFleetLedger(cfg.FS, cfg.DataDir, cfg.LedgerSnapshotBytes)
	if err != nil {
		return nil, err
	}
	for _, w := range led.log.Warnings() {
		cfg.Logf("fleet ledger: %s", w)
	}
	if led.compactions > 0 {
		cfg.Logf("fleet ledger: compacted, reclaimed %d bytes", led.reclaimedBytes)
	}
	cfg.Metrics.GaugeFunc("fleet_ledger_log_bytes",
		"Fleet ledger size on disk in bytes.", led.size)
	cfg.Metrics.GaugeFunc("fleet_persistence_degraded",
		"1 while the fleet ledger is persistence-degraded (appends failing); the frontend sheds new admissions but keeps serving.",
		func() int64 {
			if led.degradedErr() != nil {
				return 1
			}
			return 0
		})
	f := &Frontend{
		cfg:   cfg,
		led:   led,
		reg:   newRegistry(cfg.Backends, cfg.Client, cfg.BreakerThreshold, cfg.BreakerReopen, cfg.ProbeInterval),
		jobs:  map[string]*fjob{},
		runs:  newRunTable(),
		queue: make(chan *run, cfg.QueueCap),
		quit:  make(chan struct{}),
		start: time.Now(),
		met:   newFleetMetrics(cfg.Metrics),
	}
	f.met.ledgerCompactions.Add(led.compactions)
	f.met.ledgerReclaimed.Add(led.reclaimedBytes)

	// Rebuild runs from the replay, one per creating admit.
	type pendingRun struct {
		start uint64
		r     *run
	}
	rebuilt := map[uint64]*run{}
	var pending []pendingRun
	for start, rr := range st.runs {
		r := newRun(rr.key, rr.spec)
		r.dispatches = rr.dispatches
		r.backend, r.backendID = rr.backend, rr.backendID
		if rr.verdict != nil {
			r.state = rr.verdict.State // StateDone or StateFailed == run state names
			r.exit, r.outcome, r.stdout = rr.verdict.ExitCode, rr.verdict.Outcome, rr.verdict.Stdout
			r.errmsg = rr.verdict.Detail
			close(r.done)
		} else {
			r.resumed = true
			pending = append(pending, pendingRun{start, r})
		}
		rebuilt[start] = r
		// Only the key's live, non-failed run serves future dedup hits.
		if st.runStart[r.key] == start && r.state != runFailed {
			f.runs.mu.Lock()
			f.runs.runs[r.key] = r
			f.runs.mu.Unlock()
		}
	}
	for _, rj := range st.jobs {
		f.jobs[rj.id] = &fjob{id: rj.id, key: rj.key, dedup: rj.dedup,
			admitSeq: rj.admitSeq, runStart: rj.runStart, run: rebuilt[rj.runStart]}
	}
	f.nextSeq = len(st.jobs)
	// Deterministic resume order: oldest creating admit first.
	sort.Slice(pending, func(i, j int) bool { return pending[i].start < pending[j].start })
	for _, p := range pending {
		r := p.r
		f.met.inflight.Inc()
		select {
		case f.queue <- r:
		default:
			// More in-flight runs than QueueCap can only happen when the
			// cap was lowered across the restart; fail the overflow
			// soundly rather than block startup.
			f.finishRun(r, runFailed, 2, "unknown", "", "fleet: dispatch queue overflow on restart")
		}
	}
	f.met.dedupLen.Set(int64(f.runs.size()))

	f.reg.start()
	for i := 0; i < cfg.Dispatchers; i++ {
		f.wg.Add(1)
		go f.dispatcher()
	}
	return f, nil
}

// Submit admits one job: normalize, content-address, dedup, journal,
// enqueue. Implements server.JobAPI.
func (f *Frontend) Submit(spec server.JobSpec) (string, error) {
	if f.draining.Load() {
		return "", server.ErrDraining
	}
	if err := spec.Normalize(); err != nil {
		return "", err
	}
	if len(spec.Env) > 0 && !f.cfg.AllowJobEnv {
		return "", fmt.Errorf("env: overrides are disabled (run the frontend with -allow-job-env)")
	}
	key := server.SpecHash(spec)

	f.mu.Lock()
	defer f.mu.Unlock()
	if f.draining.Load() {
		return "", server.ErrDraining
	}
	if derr := f.led.degradedErr(); derr != nil {
		// The ledger cannot make new admissions durable: shed them with
		// Retry-After (503 at the API layer) rather than acknowledge a
		// job a restart would forget. Already-admitted work keeps
		// running; lookups keep serving.
		f.met.shedDegraded.Inc()
		return "", fmt.Errorf("%w: %v", server.ErrPersistDegraded, derr)
	}
	r, created := f.runs.admit(key, spec)
	if created && len(f.queue) == cap(f.queue) {
		// Shed BEFORE journaling: a refused job must leave no trace.
		f.runs.mu.Lock()
		delete(f.runs.runs, key)
		f.runs.mu.Unlock()
		f.met.shed.Inc()
		return "", server.ErrQueueFull
	}
	f.nextSeq++
	id := fmt.Sprintf("job-%06d", f.nextSeq)
	rec, err := f.led.append(Record{Type: RecAdmit, Job: id, Key: key, Dedup: !created,
		Spec: specForLedger(spec, created)})
	if err != nil {
		// The job was never durably admitted; undo the table entry.
		if created {
			f.runs.mu.Lock()
			if f.runs.runs[key] == r {
				delete(f.runs.runs, key)
			}
			f.runs.mu.Unlock()
		}
		f.nextSeq--
		if derr := f.led.degradedErr(); derr != nil {
			// This append is the one that discovered the disk failure.
			f.met.shedDegraded.Inc()
			return "", fmt.Errorf("%w: %v", server.ErrPersistDegraded, derr)
		}
		return "", fmt.Errorf("fleet ledger: %w", err)
	}
	j := &fjob{id: id, key: key, dedup: !created, admitSeq: rec.Seq, run: r}
	if created {
		j.runStart = rec.Seq
	} else {
		j.runStart = f.runStartOf(key, rec.Seq)
	}
	f.jobs[id] = j
	f.met.submitted.Inc()
	if created {
		f.met.inflight.Inc()
		f.met.dedupLen.Set(int64(f.runs.size()))
		f.queue <- r // capacity checked above under mu
	} else {
		f.met.deduped.Inc()
	}
	return id, nil
}

// specForLedger returns the spec pointer for an admit record: only the
// creating admit carries it.
func specForLedger(spec server.JobSpec, created bool) *server.JobSpec {
	if !created {
		return nil
	}
	return &spec
}

// runStartOf finds the creating admit of key's live run by scanning
// the ledger backwards from before seq.
func (f *Frontend) runStartOf(key string, before uint64) uint64 {
	records := f.led.snapshot()
	for i := len(records) - 1; i >= 0; i-- {
		rec := records[i]
		if rec.Seq < before && rec.Type == RecAdmit && rec.Key == key && !rec.Dedup {
			return rec.Seq
		}
	}
	return 0
}

// Lookup implements server.JobAPI.
func (f *Frontend) Lookup(id string) (server.JobStatus, bool) {
	f.mu.Lock()
	j, ok := f.jobs[id]
	f.mu.Unlock()
	if !ok {
		return server.JobStatus{}, false
	}
	return f.status(j), true
}

// List implements server.JobAPI: every job's status in ID order.
func (f *Frontend) List() []server.JobStatus {
	f.mu.Lock()
	jobs := make([]*fjob, 0, len(f.jobs))
	for _, j := range f.jobs {
		jobs = append(jobs, j)
	}
	f.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].id < jobs[k].id })
	out := make([]server.JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, f.status(j))
	}
	return out
}

// status maps a job's run onto the shared JobStatus shape.
func (f *Frontend) status(j *fjob) server.JobStatus {
	r := j.run
	st := server.JobStatus{ID: j.id, SpecHash: j.key}
	if r == nil {
		// An admit whose creating record was lost can only arise from a
		// hand-edited ledger; report it as failed-unknown, never guess.
		st.State = server.StateFailed
		st.Outcome = "unknown"
		st.ExitCode = 2
		st.Error = "fleet: run record missing from ledger"
		return st
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st.Attempts = r.dispatches
	st.Resumed = r.resumed
	st.Backend = r.backend
	st.Error = r.errmsg
	switch r.state {
	case runPending:
		if r.dispatches > 0 {
			st.State = server.StateRetrying
		} else {
			st.State = server.StateQueued
		}
	case runWatching:
		st.State = server.StateRunning
	case runDone:
		st.State = server.StateDone
		st.ExitCode, st.Outcome, st.Stdout = r.exit, r.outcome, r.stdout
	case runFailed:
		st.State = server.StateFailed
		st.ExitCode, st.Outcome = r.exit, r.outcome
	}
	return st
}

// Events implements server.JobAPI: the job's synthesized event stream
// with sequence > after. Unknown IDs return server.ErrNoJob; the
// stream is always consistent because it is derived from the durable
// ledger, never from transient state.
func (f *Frontend) Events(id string, after uint64) ([]any, error) {
	f.mu.Lock()
	j, ok := f.jobs[id]
	f.mu.Unlock()
	if !ok {
		return nil, server.ErrNoJob
	}
	return synthesizeEvents(f.led.snapshot(), j.admitSeq, j.runStart, j.key, after), nil
}

// Handler returns the frontend's HTTP API — the same surface as a
// single-node predabsd, served off server.APIHandler.
func (f *Frontend) Handler() http.Handler {
	return server.APIHandler(f, server.APIExtras{
		Metrics: f.cfg.Metrics,
		Ready: func() error {
			if f.draining.Load() {
				return fmt.Errorf("draining")
			}
			if f.reg.healthyCount() == 0 {
				return fmt.Errorf("no backend available")
			}
			return nil
		},
		Healthz: func() map[string]any {
			h := map[string]any{"status": "ok", "role": "frontend",
				"uptime_s":             int64(time.Since(f.start).Seconds()),
				"persistence_degraded": f.led.degradedErr() != nil,
			}
			if f.cfg.CacheURL != "" {
				h["cache_url"] = f.cfg.CacheURL
			}
			return h
		},
		Statz: f.statz,
	})
}

func (f *Frontend) statz() map[string]any {
	f.mu.Lock()
	jobs := len(f.jobs)
	f.mu.Unlock()
	backends := make([]map[string]any, 0, len(f.reg.nodes))
	for _, n := range f.reg.nodes {
		state, tripped, reopened := n.br.Snapshot()
		backends = append(backends, map[string]any{
			"url": n.url, "ready": n.ready.Load(), "suspended": n.isSuspended(),
			"breaker": state, "breaker_trips": tripped, "breaker_reopens": reopened,
		})
	}
	st := map[string]any{
		"role":                 "frontend",
		"jobs":                 jobs,
		"dedup_entries":        f.runs.size(),
		"queue_depth":          len(f.queue),
		"backends":             backends,
		"uptime_s":             int64(time.Since(f.start).Seconds()),
		"ledger_log_bytes":     f.led.size(),
		"persistence_degraded": f.led.degradedErr() != nil,
	}
	if derr := f.led.degradedErr(); derr != nil {
		st["persistence_error"] = derr.Error()
	}
	if f.cfg.CacheURL != "" {
		st["cache_url"] = f.cfg.CacheURL
	}
	return st
}

// finishRun records a run's terminal verdict: journal first, then the
// in-memory transition — the durable-before-visible ordering the whole
// design rests on. Exactly one verdict record per run.
func (f *Frontend) finishRun(r *run, state string, exit int, outcome, stdout, errmsg string) {
	if _, err := f.led.append(Record{Type: RecVerdict, Key: r.key,
		State: state, ExitCode: exit, Outcome: outcome, Stdout: stdout, Detail: errmsg}); err != nil {
		// The ledger is unwritable, so the verdict is not durable — but
		// it is still the backend's real, sound answer: serve it from
		// memory as-is. A restart replays the run as in-flight and
		// re-runs the deterministic pipeline, which can only reproduce
		// the same verdict; degrading it to "unknown" here would trade a
		// correct answer for a weaker one with no soundness gain. New
		// admissions are shed separately while the ledger is degraded.
		f.cfg.Logf("fleet ledger: verdict append failed (serving verdict non-durably): %v", err)
	}
	f.runs.complete(r, state, exit, outcome, stdout, errmsg)
	f.met.inflight.Dec()
	f.met.dedupLen.Set(int64(f.runs.size()))
	if state == runDone {
		f.met.completed.Inc()
	} else {
		f.met.failed.Inc()
	}
}

// Shutdown drains the frontend: stop admitting, stop the probers and
// dispatchers, close the ledger. In-flight runs stay journaled and are
// adopted or re-dispatched by the next start.
func (f *Frontend) Shutdown() {
	if f.draining.Swap(true) {
		return
	}
	close(f.quit)
	f.reg.stop()
	f.wg.Wait()
	if err := f.led.close(); err != nil {
		f.cfg.Logf("fleet ledger: close: %v", err)
	}
}
