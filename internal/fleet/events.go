package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"predabs/internal/server"
)

// FleetEvent is one record of a frontend job's event stream, served as
// NDJSON at GET /jobs/{id}/events. The stream is synthesized from the
// durable fleet ledger: the job's own admit record followed by every
// record of its run (dispatches, lease expiries, adoptions, the
// verdict), densely renumbered per job — a client that saw records
// through seq N resumes with ?after=N and observes no gap and no
// duplicate, the same contract the backend's worker event stream
// keeps. Specs and verdict stdout are stripped at synthesis; fetch
// GET /jobs/{id} for the verdict payload.
type FleetEvent struct {
	Seq  uint64 `json:"seq"`
	TS   int64  `json:"ts"` // unix nanoseconds
	Type string `json:"type"`
	// Dedup marks an admit that joined an existing run.
	Dedup bool `json:"dedup,omitempty"`
	// Backend/BackendID locate the backend attempt (dispatch, lease,
	// adopt records).
	Backend   string `json:"backend,omitempty"`
	BackendID string `json:"backend_id,omitempty"`
	// Dispatch is the 1-based dispatch ordinal (dispatch records).
	Dispatch int `json:"dispatch,omitempty"`
	// Lease is "expired" on lease records.
	Lease string `json:"lease,omitempty"`
	// Verdict payload (verdict records); Stdout is never included.
	State    string `json:"state,omitempty"`
	ExitCode int    `json:"exit_code,omitempty"`
	Outcome  string `json:"outcome,omitempty"`
	Detail   string `json:"detail,omitempty"`
	// Dropped, on a verdict record, declares that ledger compaction
	// elided this many intermediate records (dispatches, lease expiries,
	// adoptions) before it: the verdict's Seq equals the seq it had in
	// the uncompacted stream, so a client that already consumed through
	// any elided seq resumes with ?after=N and observes the verdict with
	// no duplicate — the gap is explicit, never silent.
	Dropped uint64 `json:"dropped,omitempty"`
}

// synthesizeEvents builds the per-job stream: the job's own admit
// record (ledger sequence admitSeq), then every record of the run the
// job joined — the records under key after the run's creating admit
// (ledger sequence runStart), through the run's verdict and no
// further. The window excludes both earlier invalidated runs under the
// same key and any replacement run created after this one failed, and
// it lets a dedup join onto an already-completed run still observe the
// verdict. Sequence numbers are densely renumbered per job; a snapshot
// record (ledger compaction folded the run) advances the sequence by
// its declared Dropped count before emitting, so the verdict keeps the
// exact seq it had pre-compaction and ?after=N resumption stays
// correct across a compaction.
func synthesizeEvents(records []Record, admitSeq, runStart uint64, key string, after uint64) []any {
	var out []any
	var seq uint64
	emit := func(rec Record) {
		seq += rec.Dropped
		seq++
		if seq <= after {
			return
		}
		typ := rec.Type
		if typ == RecSnapshot {
			typ = RecVerdict // clients see a verdict, with the gap declared
		}
		out = append(out, FleetEvent{
			Seq: seq, TS: rec.TS, Type: typ, Dedup: rec.Dedup,
			Backend: rec.Backend, BackendID: rec.BackendID,
			Dispatch: rec.Dispatch, Lease: rec.Lease,
			State: rec.State, ExitCode: rec.ExitCode,
			Outcome: rec.Outcome, Detail: rec.Detail,
			Dropped: rec.Dropped,
		})
	}
	for _, rec := range records {
		if rec.Seq == admitSeq {
			emit(rec)
			break
		}
	}
	for _, rec := range records {
		if rec.Seq <= runStart || rec.Key != key || rec.Type == RecAdmit {
			continue
		}
		emit(rec)
		if rec.Type == RecVerdict || rec.Type == RecSnapshot {
			break
		}
	}
	return out
}

// ValidateEvents checks an NDJSON export of a frontend job's event
// stream (the body of GET /jobs/{id}/events) against the fleet record
// schema: known types, dense strictly increasing sequence numbers, an
// admit first (unless the stream starts mid-log via ?after=N), no
// record after the verdict, and per-type payload rules. It returns the
// number of records read and the first violation with its 1-based line
// number. cmd/tracelint -fleet drives it.
func ValidateEvents(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	n := 0
	var prevSeq uint64
	first := true
	ended := false
	for sc.Scan() {
		n++
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev FleetEvent
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			return n, fmt.Errorf("line %d: not a fleet-event record: %v", n, err)
		}
		if err := validateFleetEvent(ev, prevSeq, first, ended); err != nil {
			return n, fmt.Errorf("line %d: %w", n, err)
		}
		prevSeq = ev.Seq
		first = false
		ended = ev.Type == RecVerdict
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}

func validateFleetEvent(ev FleetEvent, prevSeq uint64, first, ended bool) error {
	if ev.Seq == 0 {
		return fmt.Errorf("missing or zero seq")
	}
	if ev.Dropped > 0 && ev.Type != RecVerdict {
		return fmt.Errorf("%s record declaring dropped=%d: only a verdict may follow a compaction gap", ev.Type, ev.Dropped)
	}
	// A stream may start mid-log (?after=N), so the first seq is free;
	// after that the sequence must stay dense — except across a declared
	// compaction gap, where the verdict's seq jumps by exactly the
	// Dropped count it carries. Undeclared gaps stay violations.
	if !first && ev.Seq != prevSeq+1+ev.Dropped {
		if ev.Dropped > 0 {
			return fmt.Errorf("seq %d after %d with dropped=%d: want seq %d", ev.Seq, prevSeq, ev.Dropped, prevSeq+1+ev.Dropped)
		}
		return fmt.Errorf("seq %d after %d: stream must be dense and strictly increasing", ev.Seq, prevSeq)
	}
	if ev.TS < 0 {
		return fmt.Errorf("negative ts")
	}
	if ended {
		return fmt.Errorf("%s record after the verdict: a run has exactly one terminal record", ev.Type)
	}
	if first && ev.Seq == 1 && ev.Type != RecAdmit {
		return fmt.Errorf("stream must open with an admit record, got %q", ev.Type)
	}
	switch ev.Type {
	case RecAdmit:
		if ev.Seq != 1 {
			return fmt.Errorf("admit record at seq %d: a job is admitted exactly once, first", ev.Seq)
		}
	case RecDispatch:
		if ev.Backend == "" || ev.BackendID == "" {
			return fmt.Errorf("dispatch record without a backend and backend_id")
		}
		if ev.Dispatch < 1 {
			return fmt.Errorf("dispatch record without a positive dispatch ordinal")
		}
	case RecAdopt:
		if ev.Backend == "" || ev.BackendID == "" {
			return fmt.Errorf("adopt record without a backend and backend_id")
		}
	case RecLease:
		if ev.Lease != "expired" {
			return fmt.Errorf("lease record with lease %q: only \"expired\" is journaled", ev.Lease)
		}
	case RecVerdict:
		if ev.State != server.StateDone && ev.State != server.StateFailed {
			return fmt.Errorf("verdict record with state %q: want %q or %q",
				ev.State, server.StateDone, server.StateFailed)
		}
		if ev.State == server.StateFailed && ev.Outcome != "unknown" {
			return fmt.Errorf("failed verdict with outcome %q: exhaustion must retreat to unknown", ev.Outcome)
		}
	default:
		return fmt.Errorf("unknown event type %q", ev.Type)
	}
	return nil
}
