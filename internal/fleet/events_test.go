package fleet

import (
	"strings"
	"testing"
)

func TestValidateEventsAcceptsWellFormedStream(t *testing.T) {
	stream := strings.Join([]string{
		`{"seq":1,"ts":1,"type":"admit"}`,
		`{"seq":2,"ts":2,"type":"dispatch","backend":"http://n1","backend_id":"bjob-000001","dispatch":1}`,
		`{"seq":3,"ts":3,"type":"lease","backend":"http://n1","backend_id":"bjob-000001","lease":"expired"}`,
		`{"seq":4,"ts":4,"type":"dispatch","backend":"http://n2","backend_id":"bjob-000007","dispatch":2}`,
		`{"seq":5,"ts":5,"type":"verdict","state":"done","outcome":"verified"}`,
	}, "\n")
	if n, err := ValidateEvents(strings.NewReader(stream)); err != nil || n != 5 {
		t.Fatalf("ValidateEvents = (%d, %v), want (5, nil)", n, err)
	}
}

func TestValidateEventsMidStreamResume(t *testing.T) {
	// A ?after=N page legitimately starts past the admit.
	stream := `{"seq":4,"ts":4,"type":"dispatch","backend":"http://n2","backend_id":"b","dispatch":2}`
	if n, err := ValidateEvents(strings.NewReader(stream)); err != nil || n != 1 {
		t.Fatalf("ValidateEvents = (%d, %v), want (1, nil)", n, err)
	}
}

func TestValidateEventsRejections(t *testing.T) {
	cases := []struct {
		name, stream, wantErr string
	}{
		{"not admit first",
			`{"seq":1,"ts":1,"type":"dispatch","backend":"b","backend_id":"i","dispatch":1}`,
			"must open with an admit"},
		{"gap in seq",
			`{"seq":1,"ts":1,"type":"admit"}` + "\n" +
				`{"seq":3,"ts":3,"type":"verdict","state":"done"}`,
			"dense"},
		{"record after verdict",
			`{"seq":1,"ts":1,"type":"admit"}` + "\n" +
				`{"seq":2,"ts":2,"type":"verdict","state":"done"}` + "\n" +
				`{"seq":3,"ts":3,"type":"dispatch","backend":"b","backend_id":"i","dispatch":1}`,
			"after the verdict"},
		{"second admit",
			`{"seq":1,"ts":1,"type":"admit"}` + "\n" +
				`{"seq":2,"ts":2,"type":"admit"}`,
			"admitted exactly once"},
		{"dispatch without backend",
			`{"seq":1,"ts":1,"type":"admit"}` + "\n" +
				`{"seq":2,"ts":2,"type":"dispatch","dispatch":1}`,
			"without a backend"},
		{"lease not expired",
			`{"seq":1,"ts":1,"type":"admit"}` + "\n" +
				`{"seq":2,"ts":2,"type":"lease","lease":"renewed"}`,
			"only \"expired\""},
		{"failed verdict must be unknown",
			`{"seq":1,"ts":1,"type":"admit"}` + "\n" +
				`{"seq":2,"ts":2,"type":"verdict","state":"failed","outcome":"verified"}`,
			"retreat to unknown"},
		{"unknown type",
			`{"seq":1,"ts":1,"type":"admit"}` + "\n" +
				`{"seq":2,"ts":2,"type":"reboot"}`,
			"unknown event type"},
		{"unknown field",
			`{"seq":1,"ts":1,"type":"admit","shard":3}`,
			"not a fleet-event record"},
		{"zero seq",
			`{"seq":0,"ts":1,"type":"admit"}`,
			"zero seq"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ValidateEvents(strings.NewReader(tc.stream))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}
