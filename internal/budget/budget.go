// Package budget centralizes deadline and resource-budget tracking for
// the SLAM pipeline. A single Tracker is threaded through every stage
// (prover, cube search, Bebop, Newton) carrying the run's
// context.Context and the explicit Limits, and collecting a structured
// record of every degradation: each point where a stage hit a limit and
// soundly weakened its result instead of failing.
//
// The soundness argument (PLDI 2001, §Soundness) is that every limit
// response in this codebase only ever *weakens* the abstraction:
//
//   - a prover query that times out answers "could not prove", which
//     shrinks F_V(φ) toward fewer cubes (an under-approximation stays an
//     under-approximation);
//   - an exhausted cube budget makes the remaining transfer functions
//     the trivially sound choose(*,*);
//   - a truncated Bebop fixpoint under-approximates the reachable sets,
//     so its verdict is reported as Unknown rather than Verified.
//
// Degradation therefore costs precision (spurious counterexamples,
// Unknown outcomes), never correctness.
//
// A nil *Tracker is valid everywhere and means "no limits": all queries
// run to their internal caps and no degradations are recorded. This
// mirrors the nil-safe *trace.Tracer pattern so that hot paths pay a
// single nil check when budgets are off.
package budget

import (
	"context"
	"sync"
	"time"

	"predabs/internal/trace"
)

// Canonical limit names, used in degradation events, run reports and CLI
// output. Keep in sync with the flag names in internal/obs.
const (
	// LimitDeadline is the whole-run wall-clock deadline (-timeout) or an
	// external context cancellation.
	LimitDeadline = "deadline"
	// LimitQueryTimeout is the per-prover-query wall-clock cap
	// (-query-timeout).
	LimitQueryTimeout = "query-timeout"
	// LimitCubeBudget is the per-procedure cube-search candidate cap
	// (-cube-budget).
	LimitCubeBudget = "cube-budget"
	// LimitBDDNodes is Bebop's BDD node-count ceiling (-bdd-max-nodes).
	LimitBDDNodes = "bdd-max-nodes"
	// LimitIterations is the CEGAR iteration cap (-maxiters).
	LimitIterations = "iterations"
	// LimitCondSize is Newton's path-condition size cap (internal).
	LimitCondSize = "cond-size"
	// LimitProverBudget is the prover's internal per-query leaf-check cap
	// (internal). Plain Valid/Unsat queries absorb it as "could not
	// prove", but a model-enumeration session that hits it has an
	// incomplete model set, so the abstraction engine must degrade the
	// procedure instead of trusting absence-of-model verdicts.
	LimitProverBudget = "prover-budget"
)

// Limits are the explicit resource budgets for one run. The zero value
// means "unlimited" in every dimension.
type Limits struct {
	// RunTimeout bounds the whole run's wall clock. It is enforced via
	// the context handed to New (the CLIs build a context.WithTimeout
	// from it); the field itself is carried for reporting.
	RunTimeout time.Duration
	// QueryTimeout bounds each uncached prover query's wall clock.
	QueryTimeout time.Duration
	// CubeBudget caps the prover-backed cube candidates per procedure.
	CubeBudget int
	// BDDMaxNodes caps Bebop's BDD node table during the fixpoint.
	BDDMaxNodes int
}

// Zero reports whether no limit is set.
func (l Limits) Zero() bool { return l == Limits{} }

// Event records one class of degradation: a (stage, limit) pair that
// fired, with the detail of the first occurrence and a total count.
type Event struct {
	// Stage is the pipeline stage that degraded ("prover", "abstract",
	// "bebop", "newton", "slam").
	Stage string `json:"stage"`
	// Limit is the canonical limit name (Limit* constants).
	Limit string `json:"limit"`
	// Detail describes the first occurrence (a procedure name, a query
	// description, ...).
	Detail string `json:"detail,omitempty"`
	// Count is how many times this (stage, limit) pair fired.
	Count int `json:"count"`
}

// Tracker carries one run's context, limits and degradation log. Safe
// for concurrent use; a nil Tracker is valid and means "unlimited".
type Tracker struct {
	ctx    context.Context
	limits Limits
	tracer *trace.Tracer

	mu     sync.Mutex
	order  []string          // (stage, limit) keys in first-fired order
	events map[string]*Event // keyed by stage + "\x00" + limit
}

// New builds a Tracker for one run. ctx may be nil (treated as
// context.Background()); tracer may be nil.
func New(ctx context.Context, limits Limits, tracer *trace.Tracer) *Tracker {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Tracker{
		ctx:    ctx,
		limits: limits,
		tracer: tracer,
		events: map[string]*Event{},
	}
}

// Context returns the run context (context.Background() for a nil
// Tracker).
func (t *Tracker) Context() context.Context {
	if t == nil || t.ctx == nil {
		return context.Background()
	}
	return t.ctx
}

// Limits returns the run limits (the zero Limits for a nil Tracker).
func (t *Tracker) Limits() Limits {
	if t == nil {
		return Limits{}
	}
	return t.limits
}

// Cancelled reports whether the run deadline has passed or the context
// was cancelled. It is cheap enough for per-round checks but should not
// be called per prover leaf check (the prover batches it).
func (t *Tracker) Cancelled() bool {
	if t == nil || t.ctx == nil {
		return false
	}
	select {
	case <-t.ctx.Done():
		return true
	default:
		return false
	}
}

// Err returns the context error once Cancelled (nil otherwise).
func (t *Tracker) Err() error {
	if t == nil || t.ctx == nil {
		return nil
	}
	return t.ctx.Err()
}

// Deadline reports the run deadline, if the context carries one.
func (t *Tracker) Deadline() (time.Time, bool) {
	if t == nil || t.ctx == nil {
		return time.Time{}, false
	}
	return t.ctx.Deadline()
}

// Degrade records one degradation. The first occurrence of a
// (stage, limit) pair also emits a degrade/limit trace event; repeats
// only bump the count, so a run with thousands of query timeouts stays
// diagnosable without drowning the trace.
func (t *Tracker) Degrade(stage, limit, detail string) {
	if t == nil {
		return
	}
	key := stage + "\x00" + limit
	t.mu.Lock()
	ev := t.events[key]
	if ev == nil {
		ev = &Event{Stage: stage, Limit: limit, Detail: detail}
		t.events[key] = ev
		t.order = append(t.order, key)
	}
	ev.Count++
	first := ev.Count == 1
	t.mu.Unlock()
	if first {
		t.tracer.Degrade(stage, limit, detail)
	}
}

// Events snapshots the degradation log in first-fired order.
func (t *Tracker) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.order))
	for _, key := range t.order {
		out = append(out, *t.events[key])
	}
	return out
}

// Degraded reports whether any limit has fired.
func (t *Tracker) Degraded() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.order) > 0
}

// First returns the first degradation recorded, if any — the limit a
// report should lead with.
func (t *Tracker) First() (Event, bool) {
	if t == nil {
		return Event{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.order) == 0 {
		return Event{}, false
	}
	return *t.events[t.order[0]], true
}
