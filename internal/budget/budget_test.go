package budget

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"predabs/internal/trace"
)

func TestNilTrackerIsUnlimited(t *testing.T) {
	var bt *Tracker
	if bt.Cancelled() {
		t.Fatal("nil tracker reports cancelled")
	}
	if bt.Err() != nil {
		t.Fatal("nil tracker has err")
	}
	if !bt.Limits().Zero() {
		t.Fatal("nil tracker has limits")
	}
	if bt.Context() == nil {
		t.Fatal("nil tracker returns nil context")
	}
	bt.Degrade("prover", LimitQueryTimeout, "x") // must not panic
	if bt.Degraded() || len(bt.Events()) != 0 {
		t.Fatal("nil tracker recorded a degradation")
	}
	if _, ok := bt.First(); ok {
		t.Fatal("nil tracker has a first event")
	}
}

func TestDegradeDedup(t *testing.T) {
	bt := New(context.Background(), Limits{CubeBudget: 5}, nil)
	bt.Degrade("abstract", LimitCubeBudget, "proc main")
	bt.Degrade("abstract", LimitCubeBudget, "proc other")
	bt.Degrade("prover", LimitQueryTimeout, "q1")
	bt.Degrade("abstract", LimitCubeBudget, "proc third")

	evs := bt.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d event classes, want 2: %+v", len(evs), evs)
	}
	if evs[0].Stage != "abstract" || evs[0].Limit != LimitCubeBudget ||
		evs[0].Count != 3 || evs[0].Detail != "proc main" {
		t.Fatalf("bad first event: %+v", evs[0])
	}
	if evs[1].Stage != "prover" || evs[1].Count != 1 {
		t.Fatalf("bad second event: %+v", evs[1])
	}
	first, ok := bt.First()
	if !ok || first.Stage != "abstract" {
		t.Fatalf("First = %+v, %v", first, ok)
	}
	if !bt.Degraded() {
		t.Fatal("Degraded() = false after Degrade")
	}
}

func TestDegradeEmitsTraceOncePerPair(t *testing.T) {
	var buf bytes.Buffer
	tr := trace.New(trace.Config{JSONL: &buf})
	bt := New(context.Background(), Limits{}, tr)
	bt.Degrade("bebop", LimitBDDNodes, "nodes=100000")
	bt.Degrade("bebop", LimitBDDNodes, "nodes=100001")
	n := strings.Count(buf.String(), `"cat":"degrade"`)
	if n != 1 {
		t.Fatalf("degrade trace events = %d, want 1\n%s", n, buf.String())
	}
	if _, err := trace.Validate(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("degrade event fails schema validation: %v", err)
	}
}

func TestCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	bt := New(ctx, Limits{RunTimeout: time.Second}, nil)
	if bt.Cancelled() {
		t.Fatal("cancelled before cancel")
	}
	cancel()
	if !bt.Cancelled() {
		t.Fatal("not cancelled after cancel")
	}
	if bt.Err() == nil {
		t.Fatal("no error after cancel")
	}
	if bt.Limits().RunTimeout != time.Second {
		t.Fatal("limits not carried")
	}
}
