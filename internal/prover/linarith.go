package prover

import "sort"

// Linear integer arithmetic by Fourier-Motzkin elimination over the
// rationals with gcd tightening (a light Omega test). Infeasibility
// reports are sound for integers; some integer-only infeasibilities are
// missed, which costs precision but never soundness.

// linCons is Σ coefs[v]·v ≤ k.
type linCons struct {
	coefs map[string]int64
	k     int64
}

func (c linCons) clone() linCons {
	m := make(map[string]int64, len(c.coefs))
	for v, co := range c.coefs {
		m[v] = co
	}
	return linCons{coefs: m, k: c.k}
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// normalize divides by the gcd of the coefficients and floors the bound
// (valid for integer variables); it reports false when the constraint is
// an unsatisfiable ground fact.
func (c *linCons) normalize() bool {
	for v, co := range c.coefs {
		if co == 0 {
			delete(c.coefs, v)
		}
	}
	if len(c.coefs) == 0 {
		return c.k >= 0
	}
	var g int64
	for _, co := range c.coefs {
		g = gcd64(g, co)
	}
	if g > 1 {
		for v := range c.coefs {
			c.coefs[v] /= g
		}
		// floor division for the bound
		k := c.k
		if k >= 0 {
			c.k = k / g
		} else {
			c.k = -((-k + g - 1) / g)
		}
	}
	return true
}

// fmMaxConstraints caps Fourier-Motzkin growth; on overflow the solver
// gives up and reports "feasible" (the sound direction).
const fmMaxConstraints = 4000

// laFeasible reports whether the constraint system has a rational
// solution (false = definitely infeasible over the integers too).
// The second result is false when the solver gave up (size cap).
func laFeasible(cons []linCons) (feasible, precise bool) {
	work := make([]linCons, 0, len(cons))
	for _, c := range cons {
		c2 := c.clone()
		if !c2.normalize() {
			return false, true
		}
		if len(c2.coefs) > 0 {
			work = append(work, c2)
		}
	}
	for {
		// Pick the variable with the fewest pos×neg combinations.
		counts := map[string][2]int{}
		for _, c := range work {
			for v, co := range c.coefs {
				pc := counts[v]
				if co > 0 {
					pc[0]++
				} else {
					pc[1]++
				}
				counts[v] = pc
			}
		}
		if len(counts) == 0 {
			return true, true
		}
		vars := make([]string, 0, len(counts))
		for v := range counts {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		best, bestCost := vars[0], 1<<30
		for _, v := range vars {
			pc := counts[v]
			cost := pc[0] * pc[1]
			if cost < bestCost {
				best, bestCost = v, cost
			}
		}

		var pos, neg, rest []linCons
		for _, c := range work {
			switch co := c.coefs[best]; {
			case co > 0:
				pos = append(pos, c)
			case co < 0:
				neg = append(neg, c)
			default:
				rest = append(rest, c)
			}
		}
		work = rest
		for _, a := range pos {
			for _, b := range neg {
				ca, cb := a.coefs[best], -b.coefs[best] // ca>0, cb>0
				nc := linCons{coefs: map[string]int64{}}
				for v, co := range a.coefs {
					nc.coefs[v] += co * cb
				}
				for v, co := range b.coefs {
					nc.coefs[v] += co * ca
				}
				nc.k = a.k*cb + b.k*ca
				if !nc.normalize() {
					return false, true
				}
				if len(nc.coefs) > 0 {
					work = append(work, nc)
				}
				if len(work) > fmMaxConstraints {
					return true, false // gave up
				}
			}
		}
	}
}

// entailsZero reports whether the system entails expr = 0 for the linear
// expression (coefs, k), i.e. both expr ≤ -1 and expr ≥ 1 are infeasible.
func entailsZero(cons []linCons, coefs map[string]int64, k int64) bool {
	// expr <= -1 infeasible?
	le := linCons{coefs: map[string]int64{}, k: -1 - k}
	for v, co := range coefs {
		le.coefs[v] = co
	}
	if f, prec := laFeasible(append(cons[:len(cons):len(cons)], le)); f || !prec {
		return false
	}
	// expr >= 1 infeasible? (i.e. -expr <= -1)
	ge := linCons{coefs: map[string]int64{}, k: -1 + k}
	for v, co := range coefs {
		ge.coefs[v] = -co
	}
	if f, prec := laFeasible(append(cons[:len(cons):len(cons)], ge)); f || !prec {
		return false
	}
	return true
}

// linExpr is a linear combination of class keys plus a constant.
type linExpr struct {
	coefs map[string]int64
	k     int64
}

func (e linExpr) sub(o linExpr) linExpr {
	out := linExpr{coefs: map[string]int64{}, k: e.k - o.k}
	for v, c := range e.coefs {
		out.coefs[v] += c
	}
	for v, c := range o.coefs {
		out.coefs[v] -= c
	}
	for v, c := range out.coefs {
		if c == 0 {
			delete(out.coefs, v)
		}
	}
	return out
}
