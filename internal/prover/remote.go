package prover

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"predabs/internal/breaker"
	"predabs/internal/metrics"
	"predabs/internal/trace"
)

// Wire shapes for the predcached batched endpoints. internal/cacheserv
// declares the server-side mirrors (importing it from here would cycle);
// TestRemoteWireFormatGolden pins the encoded bytes so the two cannot
// drift.
type remoteLookupRequest struct {
	Partition string   `json:"partition"`
	Keys      []string `json:"keys"`
}

type remoteLookupResponse struct {
	Entries []CacheEntry `json:"entries"`
}

type remotePublishRequest struct {
	Partition string       `json:"partition"`
	Entries   []CacheEntry `json:"entries"`
}

// Remote tier internal bounds.
const (
	// maxRemotePending caps the publish buffer; beyond it new verdicts
	// are dropped (the remote cache is best-effort, the run is not).
	maxRemotePending = 16384
	// maxRemoteExpect caps the verify mode's pending-expectation table.
	maxRemoteExpect = 8192
	// remoteFlushBudget bounds one background publish POST — generous
	// compared to the lookup budget because nothing blocks on it.
	remoteFlushBudget = 2 * time.Second
)

// RemoteConfig parameterizes a RemoteTier. Zero values select the
// documented defaults.
type RemoteConfig struct {
	// URL is the predcached base URL (required), e.g. http://host:9090.
	URL string
	// Partition is the checkpoint compatibility hash scoping every
	// lookup and publish (required): runs with different tool versions,
	// limits or engines can never exchange verdicts.
	Partition string
	// Client is the HTTP client (default: a fresh client; per-request
	// deadlines come from LookupBudget / the flush budget).
	Client *http.Client
	// LookupBudget hard-bounds one remote lookup (default 5ms). A lookup
	// that exceeds it is a miss — the prover computes locally and never
	// blocks beyond this budget.
	LookupBudget time.Duration
	// FlushInterval paces background publish flushes (default 250ms);
	// MaxBatch additionally triggers a flush when that many verdicts are
	// buffered (default 256).
	FlushInterval time.Duration
	MaxBatch      int
	// BreakerThreshold / BreakerReopen parameterize the tier's circuit
	// breaker (defaults 3 / 2s, jittered ±50%): consecutive transport
	// failures suspend the tier so a dead or slow cache costs at most
	// threshold lookup budgets before every query degrades to pure
	// local behavior.
	BreakerThreshold int
	BreakerReopen    time.Duration
	// Verify enables the revalidation mode: remote hits never
	// short-circuit the local decision procedure; instead a
	// deterministic sample of keys (every VerifySample'th by FNV hash,
	// default 4; 1 samples everything) fetches the remote answer and
	// compares it against the locally computed verdict. Any mismatch
	// quarantines the tier for the rest of the run.
	Verify       bool
	VerifySample int
	// Metrics optionally registers the prover_remote_* instrument
	// families (nil disables at zero cost).
	Metrics *metrics.Registry
	// Trace optionally receives cache.lookup / cache.flush spans and the
	// cache.quarantine instant.
	Trace *trace.Tracer
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

// RemoteStats is a point-in-time snapshot of a tier's counters.
type RemoteStats struct {
	Lookups, Hits, Misses, Fallbacks int64
	Published, Dropped               int64
	Verified, Mismatches             int64
	Quarantined                      bool
	Breaker                          string
}

// RemoteTier is the shared-cache tier layered behind the prover's local
// sharded cache (Prover.Remote). It is sound and non-blocking by
// construction:
//
//   - Lookups are budgeted (LookupBudget) and gated by a circuit
//     breaker; any failure, timeout or open breaker is simply a miss.
//   - Only fully decided verdicts are published (the prover calls
//     Publish under the same condition it memoizes locally), and
//     publishes ride batched asynchronous flushes off the query path.
//   - Verify mode never lets a remote answer reach a verdict at all,
//     and one contradiction with the local decision procedure
//     quarantines the tier permanently.
//
// A nil *RemoteTier is inert: the prover checks Remote != nil before
// touching it, so the disabled tier costs zero allocations and zero
// goroutines, mirroring the nil-tracer/nil-metrics contract.
type RemoteTier struct {
	cfg RemoteConfig
	br  *breaker.Breaker

	lookups    atomic.Int64
	hits       atomic.Int64
	misses     atomic.Int64
	fallbacks  atomic.Int64
	published  atomic.Int64
	dropped    atomic.Int64
	verified   atomic.Int64
	mismatches atomic.Int64

	quarantined atomic.Bool

	mu      sync.Mutex
	pending []CacheEntry
	expect  map[string]bool // verify mode: remote answers awaiting local confirmation

	met remoteMetrics

	wake      chan struct{}
	quit      chan struct{}
	flusherWG sync.WaitGroup
	closeOnce sync.Once
}

// remoteMetrics mirrors the tier's atomic counters into optional
// registry instruments (nil = zero-alloc no-op).
type remoteMetrics struct {
	lookups    *metrics.Counter
	hits       *metrics.Counter
	misses     *metrics.Counter
	fallbacks  *metrics.Counter
	published  *metrics.Counter
	dropped    *metrics.Counter
	verified   *metrics.Counter
	mismatches *metrics.Counter
}

func newRemoteMetrics(r *metrics.Registry, t *RemoteTier) remoteMetrics {
	if r == nil {
		return remoteMetrics{}
	}
	r.GaugeFunc("prover_remote_breaker_state", "Remote cache tier breaker: 0 closed, 1 half-open, 2 open.", func() int64 {
		state, _, _ := t.br.Snapshot()
		switch state {
		case breaker.HalfOpen:
			return 1
		case breaker.Open:
			return 2
		default:
			return 0
		}
	})
	r.GaugeFunc("prover_remote_quarantined", "1 after verify mode benched the remote tier on a mismatch.", func() int64 {
		if t.quarantined.Load() {
			return 1
		}
		return 0
	})
	return remoteMetrics{
		lookups:    r.Counter("prover_remote_lookups_total", "Remote cache lookups attempted."),
		hits:       r.Counter("prover_remote_hits_total", "Remote cache lookups answered with a verdict."),
		misses:     r.Counter("prover_remote_misses_total", "Remote cache lookups answered without one."),
		fallbacks:  r.Counter("prover_remote_fallbacks_total", "Lookups degraded to local-only (breaker open, timeout, transport error)."),
		published:  r.Counter("prover_remote_published_total", "Verdicts delivered by background publish flushes."),
		dropped:    r.Counter("prover_remote_dropped_total", "Verdicts dropped (flush failure, breaker open, buffer overflow)."),
		verified:   r.Counter("prover_remote_verified_total", "Remote answers revalidated against the local decision procedure."),
		mismatches: r.Counter("prover_remote_mismatches_total", "Revalidations that contradicted the remote answer (each quarantines the tier)."),
	}
}

// NewRemoteTier starts a remote cache tier: one background flusher
// goroutine, stopped by Close.
func NewRemoteTier(cfg RemoteConfig) *RemoteTier {
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.LookupBudget <= 0 {
		cfg.LookupBudget = 5 * time.Millisecond
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 250 * time.Millisecond
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerReopen <= 0 {
		cfg.BreakerReopen = 2 * time.Second
	}
	if cfg.VerifySample <= 0 {
		cfg.VerifySample = 4
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	t := &RemoteTier{
		cfg:  cfg,
		br:   breaker.New(cfg.BreakerThreshold, cfg.BreakerReopen),
		wake: make(chan struct{}, 1),
		quit: make(chan struct{}),
	}
	if cfg.Verify {
		t.expect = map[string]bool{}
	}
	t.met = newRemoteMetrics(cfg.Metrics, t)
	t.flusherWG.Add(1)
	go t.flusher()
	return t
}

// sampledForVerify deterministically selects which keys the verify mode
// revalidates: every n'th by FNV-1a — stable across processes and runs,
// unlike the local cache's seeded maphash.
func sampledForVerify(key string, n int) bool {
	if n <= 1 {
		return true
	}
	h := fnv.New32a()
	io.WriteString(h, key)
	return h.Sum32()%uint32(n) == 0
}

// Lookup consults the remote cache for one canonical query key. ok is
// true only when a trusted verdict came back within the lookup budget;
// every other outcome (quarantined tier, open breaker, timeout,
// transport error, plain miss, verify mode) is a miss and the caller
// computes locally. Never blocks beyond cfg.LookupBudget.
func (t *RemoteTier) Lookup(key string) (val, ok bool) {
	if t == nil || t.quarantined.Load() {
		return false, false
	}
	if t.cfg.Verify && !sampledForVerify(key, t.cfg.VerifySample) {
		return false, false
	}
	t.lookups.Add(1)
	t.met.lookups.Inc()
	if !t.br.Allow() {
		t.fallbacks.Add(1)
		t.met.fallbacks.Inc()
		return false, false
	}
	start := time.Now()
	entry, found, err := t.fetch(key)
	if t.cfg.Trace != nil {
		t.cfg.Trace.SpanAt("cache", "lookup", start, time.Since(start),
			trace.Bool("hit", err == nil && found),
			trace.Bool("fallback", err != nil))
	}
	if err != nil {
		t.br.Fail()
		t.fallbacks.Add(1)
		t.met.fallbacks.Inc()
		return false, false
	}
	t.br.Success()
	if !found {
		t.misses.Add(1)
		t.met.misses.Inc()
		return false, false
	}
	t.hits.Add(1)
	t.met.hits.Inc()
	if t.cfg.Verify {
		// The remote answer becomes an expectation, never a verdict: the
		// local procedure recomputes and Publish compares.
		t.mu.Lock()
		if len(t.expect) < maxRemoteExpect {
			t.expect[key] = entry.Val
		}
		t.mu.Unlock()
		return false, false
	}
	return entry.Val, true
}

// fetch does one budgeted POST /v1/lookup for a single key.
func (t *RemoteTier) fetch(key string) (CacheEntry, bool, error) {
	body, err := encodeRemoteLookup(t.cfg.Partition, []string{key})
	if err != nil {
		return CacheEntry{}, false, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), t.cfg.LookupBudget)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.cfg.URL+"/v1/lookup", bytes.NewReader(body))
	if err != nil {
		return CacheEntry{}, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.cfg.Client.Do(req)
	if err != nil {
		return CacheEntry{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return CacheEntry{}, false, fmt.Errorf("remote cache: lookup returned %d", resp.StatusCode)
	}
	var out remoteLookupResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out); err != nil {
		return CacheEntry{}, false, err
	}
	for _, e := range out.Entries {
		if e.Key == key {
			return e, true, nil
		}
	}
	return CacheEntry{}, false, nil
}

// Publish hands one locally decided verdict to the background flusher.
// The prover calls it under exactly the condition it memoizes locally
// (st.stop == stopNone), so timed-out or cancelled answers never reach
// the shared cache — the ExportCache contract, fleet-wide. In verify
// mode the verdict is first compared against any pending remote
// expectation; a contradiction quarantines the tier. Never blocks on
// the network.
func (t *RemoteTier) Publish(key string, val bool) {
	if t == nil || t.quarantined.Load() {
		return
	}
	mismatch := false
	overflow := false
	wake := false
	t.mu.Lock()
	if t.expect != nil {
		if want, okE := t.expect[key]; okE {
			delete(t.expect, key)
			t.verified.Add(1)
			t.met.verified.Inc()
			mismatch = want != val
		}
	}
	if !mismatch {
		if len(t.pending) >= maxRemotePending {
			overflow = true
		} else {
			t.pending = append(t.pending, CacheEntry{Key: key, Val: val})
			wake = len(t.pending) >= t.cfg.MaxBatch
		}
	}
	t.mu.Unlock()
	switch {
	case mismatch:
		t.mismatches.Add(1)
		t.met.mismatches.Inc()
		t.quarantine(key)
	case overflow:
		t.dropped.Add(1)
		t.met.dropped.Inc()
	case wake:
		select {
		case t.wake <- struct{}{}:
		default:
		}
	}
}

// quarantine permanently benches the tier for this run: every later
// Lookup misses instantly and every later Publish is discarded. Called
// on the first verify-mode mismatch — a poisoned cache may cost time,
// never soundness.
func (t *RemoteTier) quarantine(key string) {
	if t.quarantined.Swap(true) {
		return
	}
	t.cfg.Logf("remote cache: QUARANTINED — remote verdict for %.40q contradicts the local decision procedure", key)
	if t.cfg.Trace != nil {
		t.cfg.Trace.Event("cache", "quarantine", trace.Int("key_size", len(key)))
	}
}

// Quarantined reports whether verify mode benched the tier.
func (t *RemoteTier) Quarantined() bool { return t != nil && t.quarantined.Load() }

// Stats snapshots the tier's counters.
func (t *RemoteTier) Stats() RemoteStats {
	if t == nil {
		return RemoteStats{}
	}
	state, _, _ := t.br.Snapshot()
	return RemoteStats{
		Lookups: t.lookups.Load(), Hits: t.hits.Load(),
		Misses: t.misses.Load(), Fallbacks: t.fallbacks.Load(),
		Published: t.published.Load(), Dropped: t.dropped.Load(),
		Verified: t.verified.Load(), Mismatches: t.mismatches.Load(),
		Quarantined: t.quarantined.Load(), Breaker: state,
	}
}

// Close flushes the pending batch best-effort and stops the flusher
// goroutine. Idempotent.
func (t *RemoteTier) Close() {
	if t == nil {
		return
	}
	t.closeOnce.Do(func() {
		close(t.quit)
		t.flusherWG.Wait()
	})
}

// flusher is the tier's single background goroutine: it drains the
// publish buffer every FlushInterval, on MaxBatch wakeups, and once
// more at Close.
func (t *RemoteTier) flusher() {
	defer t.flusherWG.Done()
	ticker := time.NewTicker(t.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.quit:
			t.flush()
			return
		case <-t.wake:
		case <-ticker.C:
		}
		t.flush()
	}
}

// flush publishes the buffered batch in canonical key order. Failures
// drop the batch (and feed the breaker): the shared cache is
// best-effort, and retrying from here would buffer unboundedly against
// a dead service.
func (t *RemoteTier) flush() {
	t.mu.Lock()
	batch := t.pending
	t.pending = nil
	t.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	if t.quarantined.Load() || !t.br.Allow() {
		t.dropped.Add(int64(len(batch)))
		t.met.dropped.Add(int64(len(batch)))
		return
	}
	start := time.Now()
	err := t.post(batch)
	if t.cfg.Trace != nil {
		t.cfg.Trace.SpanAt("cache", "flush", start, time.Since(start),
			trace.Int("entries", len(batch)), trace.Bool("ok", err == nil))
	}
	if err != nil {
		t.br.Fail()
		t.dropped.Add(int64(len(batch)))
		t.met.dropped.Add(int64(len(batch)))
		return
	}
	t.br.Success()
	t.published.Add(int64(len(batch)))
	t.met.published.Add(int64(len(batch)))
}

// post sends one batched POST /v1/publish.
func (t *RemoteTier) post(batch []CacheEntry) error {
	body, err := encodeRemotePublish(t.cfg.Partition, batch)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), remoteFlushBudget)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.cfg.URL+"/v1/publish", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("remote cache: publish returned %d", resp.StatusCode)
	}
	return nil
}

// encodeRemoteLookup renders the batched lookup request in canonical
// form: sorted, deduplicated keys. Pinned by TestRemoteWireFormatGolden.
func encodeRemoteLookup(partition string, keys []string) ([]byte, error) {
	ks := append([]string(nil), keys...)
	sort.Strings(ks)
	dedup := ks[:0]
	for i, k := range ks {
		if i == 0 || ks[i-1] != k {
			dedup = append(dedup, k)
		}
	}
	return json.Marshal(remoteLookupRequest{Partition: partition, Keys: dedup})
}

// encodeRemotePublish renders the batched publish request in canonical
// form: entries sorted by key, first occurrence winning. Pinned by
// TestRemoteWireFormatGolden.
func encodeRemotePublish(partition string, entries []CacheEntry) ([]byte, error) {
	es := append([]CacheEntry(nil), entries...)
	sort.SliceStable(es, func(i, j int) bool { return es[i].Key < es[j].Key })
	dedup := es[:0]
	for i, e := range es {
		if i == 0 || es[i-1].Key != e.Key {
			dedup = append(dedup, e)
		}
	}
	return json.Marshal(remotePublishRequest{Partition: partition, Entries: dedup})
}
