package prover

import (
	"fmt"

	"predabs/internal/form"
)

// congruence closure over the term DAG.
//
// Every term is a node labelled with a function symbol and child nodes:
// variables and integer constants are nullary, *x is deref(x), x->f is
// sel_f(x), x[i] is idx(x,i), &x is addr(x), and arithmetic operators are
// uninterpreted at this layer (the linear arithmetic solver interprets
// them; congruence over them is still sound). Distinct integer constants
// and distinct variable addresses carry implicit disequalities.

type ccNode struct {
	id     int
	label  string // function symbol or constant spelling
	args   []int
	parent int // union-find
	// members of the class, maintained at the representative
	classMembers []int
	// use lists: parents that mention this node as an argument
	uses []int
	// constant value if this class contains an integer literal
	hasNum bool
	numVal int64
	// addrVar is the variable name when this node is addr(v) for a
	// variable v (used for address distinctness).
	addrVar string
}

type cc struct {
	nodes   []*ccNode
	byKey   map[string]int // canonical term string -> node id
	bySig   map[string]int // congruence signature -> node id
	pending [][2]int
	failed  bool
	failMsg string
	// diseqs: pairs of node ids asserted unequal.
	diseqs [][2]int
}

func newCC() *cc {
	return &cc{byKey: map[string]int{}, bySig: map[string]int{}}
}

func (c *cc) find(i int) int {
	root := i
	for c.nodes[root].parent != root {
		root = c.nodes[root].parent
	}
	for c.nodes[i].parent != i {
		next := c.nodes[i].parent
		c.nodes[i].parent = root
		i = next
	}
	return root
}

func (c *cc) newNode(key, label string, args []int) int {
	id := len(c.nodes)
	n := &ccNode{id: id, label: label, args: args, parent: id}
	n.classMembers = []int{id}
	c.nodes = append(c.nodes, n)
	c.byKey[key] = id
	for _, a := range args {
		ar := c.find(a)
		c.nodes[ar].uses = append(c.nodes[ar].uses, id)
	}
	c.addSig(id)
	return id
}

func (c *cc) sig(i int) string {
	n := c.nodes[i]
	s := n.label
	for _, a := range n.args {
		s += fmt.Sprintf("|%d", c.find(a))
	}
	return s
}

// addSig registers the node's congruence signature, scheduling a merge if
// another node already has it.
func (c *cc) addSig(i int) {
	if len(c.nodes[i].args) == 0 {
		return
	}
	s := c.sig(i)
	if j, ok := c.bySig[s]; ok {
		if c.find(i) != c.find(j) {
			c.pending = append(c.pending, [2]int{i, j})
		}
		return
	}
	c.bySig[s] = i
}

// add interns a term, returning its node id.
func (c *cc) add(t form.Term) int {
	key := t.String()
	if id, ok := c.byKey[key]; ok {
		return id
	}
	switch t := t.(type) {
	case form.Num:
		id := c.newNode(key, key, nil)
		c.nodes[id].hasNum = true
		c.nodes[id].numVal = t.V
		return id
	case form.Var:
		return c.newNode(key, "v:"+t.Name, nil)
	case form.Deref:
		x := c.add(t.X)
		return c.newNode(key, "deref", []int{x})
	case form.Sel:
		x := c.add(t.X)
		return c.newNode(key, "sel:"+t.Field, []int{x})
	case form.Idx:
		x := c.add(t.X)
		i := c.add(t.I)
		return c.newNode(key, "idx", []int{x, i})
	case form.AddrOf:
		x := c.add(t.X)
		id := c.newNode(key, "addr", []int{x})
		if v, ok := t.X.(form.Var); ok {
			c.nodes[id].addrVar = v.Name
			// &v is never NULL: assert addr(v) != 0.
			zero := c.add(form.Num{V: 0})
			c.diseqs = append(c.diseqs, [2]int{id, zero})
			// The cell of v holds *&v ≡ v: intern deref(&v) and merge
			// with v so p = &v lets congruence derive *p = v.
			dv := c.addDerefOfAddr(t.X, id)
			c.pending = append(c.pending, [2]int{dv, x})
			c.propagate()
		}
		return id
	case form.Neg:
		x := c.add(t.X)
		return c.newNode(key, "neg", []int{x})
	case form.Arith:
		x := c.add(t.X)
		y := c.add(t.Y)
		return c.newNode(key, "op:"+t.Op.String(), []int{x, y})
	}
	return c.newNode(key, "opaque:"+key, nil)
}

// addDerefOfAddr interns the term *(&x) as a node without source-level
// simplification (the simplifier would collapse it, defeating the axiom).
func (c *cc) addDerefOfAddr(x form.Term, addrID int) int {
	key := "*(&" + x.String() + ")"
	if id, ok := c.byKey[key]; ok {
		return id
	}
	return c.newNode(key, "deref", []int{addrID})
}

// merge asserts equality of two terms.
func (c *cc) merge(a, b form.Term) {
	if c.failed {
		return
	}
	i, j := c.add(a), c.add(b)
	c.pending = append(c.pending, [2]int{i, j})
	c.propagate()
}

// mergeIDs asserts equality of two interned nodes.
func (c *cc) mergeIDs(i, j int) {
	if c.failed {
		return
	}
	c.pending = append(c.pending, [2]int{i, j})
	c.propagate()
}

// disequal asserts a != b.
func (c *cc) disequal(a, b form.Term) {
	if c.failed {
		return
	}
	i, j := c.add(a), c.add(b)
	c.diseqs = append(c.diseqs, [2]int{i, j})
	c.propagate()
}

func (c *cc) propagate() {
	for len(c.pending) > 0 && !c.failed {
		pair := c.pending[len(c.pending)-1]
		c.pending = c.pending[:len(c.pending)-1]
		c.union(pair[0], pair[1])
	}
	c.checkDiseqs()
}

func (c *cc) union(i, j int) {
	ri, rj := c.find(i), c.find(j)
	if ri == rj {
		return
	}
	ni, nj := c.nodes[ri], c.nodes[rj]
	// Keep the class with more members as representative.
	if len(ni.classMembers) < len(nj.classMembers) {
		ri, rj = rj, ri
		ni, nj = nj, ni
	}
	// Constant propagation: merging two classes with different constants
	// is a conflict.
	if ni.hasNum && nj.hasNum && ni.numVal != nj.numVal {
		c.fail(fmt.Sprintf("constants %d and %d merged", ni.numVal, nj.numVal))
		return
	}
	// Address distinctness: &a = &b for distinct variables is a conflict,
	// and an address constant can never be NULL (0).
	if ni.addrVar != "" && nj.addrVar != "" && ni.addrVar != nj.addrVar {
		c.fail(fmt.Sprintf("addresses &%s and &%s merged", ni.addrVar, nj.addrVar))
		return
	}
	if (ni.addrVar != "" && nj.hasNum && nj.numVal == 0) ||
		(nj.addrVar != "" && ni.hasNum && ni.numVal == 0) {
		c.fail("address merged with NULL")
		return
	}

	c.nodes[rj].parent = ri
	ni.classMembers = append(ni.classMembers, nj.classMembers...)
	if nj.hasNum {
		ni.hasNum, ni.numVal = true, nj.numVal
	}
	if nj.addrVar != "" {
		ni.addrVar = nj.addrVar
	}
	// Recompute signatures of parents of the absorbed class.
	uses := nj.uses
	nj.uses = nil
	ni.uses = append(ni.uses, uses...)
	for _, u := range uses {
		c.addSig(u)
	}
}

func (c *cc) checkDiseqs() {
	if c.failed {
		return
	}
	for _, d := range c.diseqs {
		if c.find(d[0]) == c.find(d[1]) {
			c.fail(fmt.Sprintf("disequality violated: %s = %s",
				c.nodes[d[0]].label, c.nodes[d[1]].label))
			return
		}
	}
}

func (c *cc) fail(msg string) {
	c.failed = true
	c.failMsg = msg
}

// classConst returns the integer constant of the class of node i, if any.
func (c *cc) classConst(i int) (int64, bool) {
	r := c.find(i)
	return c.nodes[r].numVal, c.nodes[r].hasNum
}

// repKey returns a stable key naming the class of term t (for the linear
// arithmetic solver's variable naming). The term must have been interned.
func (c *cc) repKey(t form.Term) string {
	id, ok := c.byKey[t.String()]
	if !ok {
		id = c.add(t)
	}
	r := c.find(id)
	return fmt.Sprintf("c%d", r)
}
