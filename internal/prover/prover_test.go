package prover

import (
	"math/rand"
	"testing"

	"predabs/internal/cparse"
	"predabs/internal/form"
)

func pf(t *testing.T, src string) form.Formula {
	t.Helper()
	e, err := cparse.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	f, err := form.FromCond(e)
	if err != nil {
		t.Fatalf("convert %q: %v", src, err)
	}
	return f
}

func TestValidArithmetic(t *testing.T) {
	p := New()
	cases := []struct {
		hyp, goal string
		want      bool
	}{
		// Paper Section 4.1: (x = 2) ⇒ (x < 4).
		{"x == 2", "x < 4", true},
		{"x == 2", "x < 2", false},
		{"x < 5", "x < 6", true},
		{"x < 5", "x < 4", false},
		{"x <= 4", "x < 5", true},
		{"x > 0 && y > 0", "x + y > 1", true},
		{"x > 0 && y > 0", "x + y > 2", false},
		{"x == y && y == z", "x == z", true},
		{"x == y + 1", "x > y", true},
		{"x >= 0 && x <= 0", "x == 0", true},
		{"x != 0 && x >= 0", "x >= 1", true},
		{"2 * x == 6", "x == 3", true},
		{"x + 1 <= y", "x < y", true},
		{"x - y == 0", "x == y", true},
		{"1 == 1", "2 > 1", true},
		{"x > 1", "x != 1", true},
	}
	for _, c := range cases {
		got := p.Valid(pf(t, c.hyp), pf(t, c.goal))
		if got != c.want {
			t.Errorf("(%s) => (%s): got %v, want %v", c.hyp, c.goal, got, c.want)
		}
	}
}

func TestValidEUF(t *testing.T) {
	p := New()
	cases := []struct {
		hyp, goal string
		want      bool
	}{
		// Footnote 3: (p = q) ⇒ (*p = *q), contrapositive used for alias
		// refinement.
		{"p == q", "*p == *q", true},
		{"*p != *q", "p != q", true},
		{"p == q", "p->val == q->val", true},
		{"p->val != q->val", "p != q", true},
		{"p == q && q == r", "*p == *r", true},
		{"p != q", "*p != *q", false}, // different pointers may share values
		{"i == j", "a[i] == a[j]", true},
		{"a[i] != a[j]", "i != j", true},
		{"p == &x", "*p == x", true},
		{"p == &x && q == &x", "*p == *q", true},
		{"p == &x && *p == 3", "x == 3", true},
		{"x == 1", "*p == 1", false},
	}
	for _, c := range cases {
		got := p.Valid(pf(t, c.hyp), pf(t, c.goal))
		if got != c.want {
			t.Errorf("(%s) => (%s): got %v, want %v", c.hyp, c.goal, got, c.want)
		}
	}
}

func TestValidAddressDistinctness(t *testing.T) {
	p := New()
	if !p.Valid(pf(t, "p == &x"), pf(t, "p != NULL")) {
		t.Error("&x is non-NULL")
	}
	if !p.Valid(pf(t, "p == &x && q == &y"), pf(t, "p != q")) {
		t.Error("&x != &y for distinct variables")
	}
	if p.Valid(pf(t, "p == &x && q == &x"), pf(t, "p != q")) {
		t.Error("same address: p == q")
	}
}

// The Section 2.2 alias refinement: the Bebop invariant implies that prev
// and curr are never aliases at label L.
func TestSection22AliasRefinement(t *testing.T) {
	p := New()
	inv := pf(t, "curr != NULL && curr->val > v && (prev->val <= v || prev == NULL)")
	goal := pf(t, "prev != curr")
	if !p.Valid(inv, goal) {
		t.Fatal("invariant should imply prev != curr")
	}
	// Without the value information it is not derivable.
	weak := pf(t, "curr != NULL")
	if p.Valid(weak, goal) {
		t.Fatal("curr != NULL alone must not imply prev != curr")
	}
}

func TestValidMixedTheory(t *testing.T) {
	p := New()
	cases := []struct {
		hyp, goal string
		want      bool
	}{
		// LA → CC: arithmetic forces i = j, congruence transfers to a[i].
		{"i <= j && j <= i && a[i] == 1", "a[j] == 1", true},
		{"i <= j && j <= i + 1 && a[i] == 1", "a[j] == 1", false},
		// CC → LA: equal terms share arithmetic bounds.
		{"p->val == x && x > 5", "p->val > 3", true},
		{"*p == x && *q == y && p == q", "x == y", true},
		{"x == 2 && y == x + 1", "a[y] == a[3]", true},
	}
	for _, c := range cases {
		got := p.Valid(pf(t, c.hyp), pf(t, c.goal))
		if got != c.want {
			t.Errorf("(%s) => (%s): got %v, want %v", c.hyp, c.goal, got, c.want)
		}
	}
}

func TestUnsat(t *testing.T) {
	p := New()
	unsat := []string{
		"x < 0 && x > 0",
		"x == 1 && x == 2",
		"p == NULL && p == &x",
		"p == q && *p != *q",
		"x <= y && y <= z && z < x",
		"curr == NULL && curr != NULL",
		"x == y && x < y",
	}
	for _, s := range unsat {
		if !p.Unsat(pf(t, s)) {
			t.Errorf("%q should be unsat", s)
		}
	}
	sat := []string{
		"x < 0 || x > 0",
		"x == 1 && y == 2",
		"p != q && *p == *q",
		"x <= y && y <= x",
	}
	for _, s := range sat {
		if p.Unsat(pf(t, s)) {
			t.Errorf("%q should be sat", s)
		}
	}
}

func TestBooleanStructure(t *testing.T) {
	p := New()
	cases := []struct {
		hyp, goal string
		want      bool
	}{
		{"x == 1 || x == 2", "x <= 2", true},
		{"x == 1 || x == 2", "x == 1", false},
		{"x == 1", "x == 1 || y == 2", true},
		{"x == 1 && (y == 2 || y == 3)", "y >= 2", true},
		{"!(x < 5)", "x >= 5", true},
		{"!(x == 1 || x == 2)", "x != 1", true},
	}
	for _, c := range cases {
		got := p.Valid(pf(t, c.hyp), pf(t, c.goal))
		if got != c.want {
			t.Errorf("(%s) => (%s): got %v, want %v", c.hyp, c.goal, got, c.want)
		}
	}
}

func TestCallCounting(t *testing.T) {
	p := New()
	before := p.Calls()
	p.Valid(pf(t, "x == 1"), pf(t, "x < 2"))
	p.Valid(pf(t, "x == 1"), pf(t, "x < 2")) // cached, still counted
	if p.Calls() != before+2 {
		t.Errorf("Calls = %d, want %d", p.Calls(), before+2)
	}
	if p.CacheHits() == 0 {
		t.Error("second identical query should hit the cache")
	}
}

func TestDisableCache(t *testing.T) {
	p := New()
	p.DisableCache = true
	p.Valid(pf(t, "x == 1"), pf(t, "x < 2"))
	p.Valid(pf(t, "x == 1"), pf(t, "x < 2"))
	if p.CacheHits() != 0 {
		t.Error("cache disabled but hits recorded")
	}
}

// Property test: the prover's Unsat answers agree with brute-force
// evaluation over small integer domains (soundness: Unsat=true means no
// model exists in any domain, in particular the small one).
func TestUnsatSoundnessAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	atoms := []string{
		"x < y", "x == 0", "y == 1", "x == y", "x + y == 2",
		"x <= 1", "y > x", "x != y", "x >= -1", "2*x == y",
	}
	randFormula := func() form.Formula {
		f := pf(t, atoms[r.Intn(len(atoms))])
		for k := 0; k < 2; k++ {
			g := pf(t, atoms[r.Intn(len(atoms))])
			switch r.Intn(3) {
			case 0:
				f = form.MkAnd(f, g)
			case 1:
				f = form.MkOr(f, g)
			case 2:
				f = form.MkAnd(f, form.MkNot(g))
			}
		}
		return f
	}
	p := New()
	for trial := 0; trial < 500; trial++ {
		f := randFormula()
		// Brute force over x,y ∈ [-3,3].
		model := false
		for x := int64(-3); x <= 3 && !model; x++ {
			for y := int64(-3); y <= 3 && !model; y++ {
				env := form.NewEnv()
				env.Store(form.Var{Name: "x"}, x)
				env.Store(form.Var{Name: "y"}, y)
				v, err := env.EvalFormula(f)
				if err != nil {
					t.Fatal(err)
				}
				if v {
					model = true
				}
			}
		}
		got := p.Unsat(f)
		if got && model {
			t.Fatalf("prover says unsat but model exists: %s", f)
		}
		// Completeness on this simple fragment: if no model exists in a
		// wide-enough domain, the prover should find unsat (the atoms only
		// constrain x,y near the [-3,3] range).
		if !got && !model {
			// Check a wider domain before failing: some formulas are
			// satisfiable only outside [-3,3].
			wider := false
			for x := int64(-8); x <= 8 && !wider; x++ {
				for y := int64(-8); y <= 8 && !wider; y++ {
					env := form.NewEnv()
					env.Store(form.Var{Name: "x"}, x)
					env.Store(form.Var{Name: "y"}, y)
					v, _ := env.EvalFormula(f)
					if v {
						wider = true
					}
				}
			}
			if !wider {
				t.Fatalf("prover says sat but no model in [-8,8]: %s", f)
			}
		}
	}
}

// Property test: Valid is sound — whenever Valid(h,g), every small-domain
// model of h satisfies g.
func TestValidSoundnessAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	atoms := []string{
		"x < y", "x == 0", "y <= 2", "x == y", "x + 1 == y",
		"x > 0", "y != 0", "x <= y",
	}
	p := New()
	for trial := 0; trial < 500; trial++ {
		h := pf(t, atoms[r.Intn(len(atoms))])
		h = form.MkAnd(h, pf(t, atoms[r.Intn(len(atoms))]))
		g := pf(t, atoms[r.Intn(len(atoms))])
		if !p.Valid(h, g) {
			continue
		}
		for x := int64(-4); x <= 4; x++ {
			for y := int64(-4); y <= 4; y++ {
				env := form.NewEnv()
				env.Store(form.Var{Name: "x"}, x)
				env.Store(form.Var{Name: "y"}, y)
				hv, _ := env.EvalFormula(h)
				gv, _ := env.EvalFormula(g)
				if hv && !gv {
					t.Fatalf("unsound: Valid(%s => %s) but x=%d y=%d refutes", h, g, x, y)
				}
			}
		}
	}
}
