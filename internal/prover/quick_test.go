package prover

import (
	"math/rand"
	"testing"
	"testing/quick"

	"predabs/internal/form"
)

// decodeFormula maps a byte string to a small formula over x and y, so
// testing/quick can drive structured inputs.
func decodeFormula(bs []byte) form.Formula {
	atoms := []form.Formula{
		form.Cmp{Op: form.Lt, X: form.Var{Name: "x"}, Y: form.Var{Name: "y"}},
		form.Cmp{Op: form.Eq, X: form.Var{Name: "x"}, Y: form.Num{V: 0}},
		form.Cmp{Op: form.Ge, X: form.Var{Name: "y"}, Y: form.Num{V: 1}},
		form.Cmp{Op: form.Eq, X: form.Var{Name: "x"}, Y: form.Var{Name: "y"}},
		form.Cmp{Op: form.Le, X: form.Arith{Op: form.OpAdd, X: form.Var{Name: "x"}, Y: form.Var{Name: "y"}}, Y: form.Num{V: 2}},
		form.Cmp{Op: form.Ne, X: form.Var{Name: "y"}, Y: form.Num{V: 0}},
	}
	f := atoms[0]
	for _, b := range bs {
		a := atoms[int(b>>2)%len(atoms)]
		switch b & 3 {
		case 0:
			f = form.MkAnd(f, a)
		case 1:
			f = form.MkOr(f, a)
		case 2:
			f = form.MkAnd(f, form.MkNot(a))
		case 3:
			f = form.MkOr(f, form.MkNot(a))
		}
	}
	return f
}

func hasModelInBox(f form.Formula, lo, hi int64) bool {
	for x := lo; x <= hi; x++ {
		for y := lo; y <= hi; y++ {
			env := form.NewEnv()
			env.Store(form.Var{Name: "x"}, x)
			env.Store(form.Var{Name: "y"}, y)
			if v, err := env.EvalFormula(f); err == nil && v {
				return true
			}
		}
	}
	return false
}

// quick property: Unsat(f) implies no model exists in a finite box.
func TestQuickUnsatSound(t *testing.T) {
	p := New()
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(11))}
	err := quick.Check(func(bs []byte) bool {
		if len(bs) > 6 {
			bs = bs[:6]
		}
		f := decodeFormula(bs)
		if !p.Unsat(f) {
			return true // nothing claimed
		}
		return !hasModelInBox(f, -5, 5)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// quick property: Valid(h, g) implies g holds in every boxed model of h.
func TestQuickValidSound(t *testing.T) {
	p := New()
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(12))}
	err := quick.Check(func(hb, gb []byte) bool {
		if len(hb) > 4 {
			hb = hb[:4]
		}
		if len(gb) > 4 {
			gb = gb[:4]
		}
		h, g := decodeFormula(hb), decodeFormula(gb)
		if !p.Valid(h, g) {
			return true
		}
		for x := int64(-4); x <= 4; x++ {
			for y := int64(-4); y <= 4; y++ {
				env := form.NewEnv()
				env.Store(form.Var{Name: "x"}, x)
				env.Store(form.Var{Name: "y"}, y)
				hv, _ := env.EvalFormula(h)
				gv, _ := env.EvalFormula(g)
				if hv && !gv {
					return false
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// quick property: Valid is reflexive and respects conjunction weakening.
func TestQuickValidStructural(t *testing.T) {
	p := New()
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(13))}
	err := quick.Check(func(bs, cs []byte) bool {
		if len(bs) > 4 {
			bs = bs[:4]
		}
		if len(cs) > 4 {
			cs = cs[:4]
		}
		f := decodeFormula(bs)
		g := decodeFormula(cs)
		// f ⇒ f, and f∧g ⇒ f.
		return p.Valid(f, f) && p.Valid(form.MkAnd(f, g), f)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}
