// Package prover implements the decision procedures backing C2bp's
// predicate abstraction, playing the role of Simplify and Vampyre in the
// paper: a validity checker for the quantifier-free combination of
// equality with uninterpreted functions (dereference, field selection,
// array indexing, address-of) and linear integer arithmetic, in the
// Nelson-Oppen style.
//
// Soundness contract: Valid and Unsat answer true only when the claim
// definitely holds; false means "could not prove", which predicate
// abstraction tolerates (the paper notes its provers are incomplete).
//
// A Prover is safe for concurrent use: results are memoized in a
// mutex-striped cache keyed by the canonical formula string (the paper's
// optimization 5), and the statistics counters are atomic, so the
// parallel cube search in internal/abstract can share one instance
// across workers.
package prover

import (
	"fmt"
	"hash/maphash"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"predabs/internal/budget"
	"predabs/internal/form"
	"predabs/internal/trace"
)

// Querier is the decision-procedure interface the abstraction stages
// (cube search, enforce, Newton) depend on. *Prover is the real
// implementation; internal/faultinject wraps one for chaos testing.
//
// Implementations must honor the soundness contract at the top of this
// package: a true answer means the claim definitely holds, a false
// answer means "could not prove" and is always safe to return.
type Querier interface {
	Valid(hyp, goal form.Formula) bool
	Unsat(f form.Formula) bool
}

// cacheShards stripes the query cache to keep lock contention low under
// the parallel cube search. Must be a power of two.
const cacheShards = 64

// cacheShard is one stripe of the memo table.
type cacheShard struct {
	mu sync.RWMutex
	m  map[string]bool
}

// Prover is a caching validity checker for the paper's logic fragment.
// The zero value is not ready; use New. All methods are safe for
// concurrent use, except that DisableCache must be set before the
// prover is shared between goroutines.
type Prover struct {
	// DisableCache turns result caching off (for ablation benchmarks).
	// Set it before issuing queries; it must not be flipped while other
	// goroutines are calling Valid/Unsat.
	DisableCache bool

	// Trace, when non-nil, receives one prover.query event per Valid/Unsat
	// call (including cache hits). Set it before sharing the prover between
	// goroutines; the tracer itself is concurrency-safe.
	Trace *trace.Tracer

	// QueryTimeout, when positive, bounds each uncached query's wall
	// clock. A query that exceeds it answers "could not prove" — sound
	// per the package contract — and the result is NOT cached (wall-clock
	// stops are environmental, not semantic). Set before sharing.
	QueryTimeout time.Duration

	// Budget, when non-nil, carries the run's cancellation context and
	// degradation log: a cancelled run makes every subsequent query answer
	// "could not prove" immediately. Set before sharing.
	Budget *budget.Tracker

	// Remote, when non-nil, layers a shared cache tier behind the local
	// sharded cache: consulted only on a local miss, published to only
	// for fully decided verdicts. nil costs exactly nothing on the hot
	// path (no allocations, no goroutines) — the nil-tracer contract.
	// Set before sharing.
	Remote *RemoteTier

	calls     atomic.Int64
	cacheHits atomic.Int64
	gaveUp    atomic.Int64
	timeouts  atomic.Int64
	cancels   atomic.Int64
	theoryNS  atomic.Int64

	sessions        atomic.Int64
	sessionChecks   atomic.Int64
	modelsExtracted atomic.Int64
	blockingClauses atomic.Int64

	seed   maphash.Seed
	shards [cacheShards]cacheShard
}

var _ Querier = (*Prover)(nil)

// New returns a fresh prover with an empty cache.
func New() *Prover {
	p := &Prover{seed: maphash.MakeSeed()}
	for i := range p.shards {
		p.shards[i].m = map[string]bool{}
	}
	return p
}

// Calls reports the number of Valid/Unsat entry points taken — the
// paper's "thm. prover calls" column in Tables 1 and 2.
func (p *Prover) Calls() int { return int(p.calls.Load()) }

// CacheHits reports the number of queries answered from the memo cache.
func (p *Prover) CacheHits() int { return int(p.cacheHits.Load()) }

// GaveUp reports the number of queries abandoned on resource caps
// (answered conservatively: "could not prove"). It includes timeouts
// and cancellations.
func (p *Prover) GaveUp() int { return int(p.gaveUp.Load()) }

// Timeouts reports the number of queries abandoned on QueryTimeout.
func (p *Prover) Timeouts() int { return int(p.timeouts.Load()) }

// Cancels reports the number of queries abandoned because the run
// context was cancelled (deadline or external cancellation).
func (p *Prover) Cancels() int { return int(p.cancels.Load()) }

// SolverTime reports the cumulative wall-clock time spent inside the
// decision procedures (cache hits excluded). Under the parallel cube
// search this sums across workers, so it can exceed elapsed time.
func (p *Prover) SolverTime() time.Duration {
	return time.Duration(p.theoryNS.Load())
}

// Sessions reports the number of incremental sessions opened with
// NewSession.
func (p *Prover) Sessions() int { return int(p.sessions.Load()) }

// SessionChecks reports the number of Session.Check calls. Together
// with Calls it is the run's total query count: the model-enumeration
// engine's session checks replace the cube engine's Valid calls, so
// engine comparisons use Calls() + SessionChecks().
func (p *Prover) SessionChecks() int { return int(p.sessionChecks.Load()) }

// ModelsExtracted reports the number of models returned by
// Session.Check (one per satisfiable check).
func (p *Prover) ModelsExtracted() int { return int(p.modelsExtracted.Load()) }

// BlockingClauses reports the number of Session.Block assertions — the
// enumeration loop's iteration count across all sessions.
func (p *Prover) BlockingClauses() int { return int(p.blockingClauses.Load()) }

// shard picks the cache stripe for a key.
func (p *Prover) shard(key string) *cacheShard {
	h := maphash.String(p.seed, key)
	return &p.shards[h&(cacheShards-1)]
}

// cacheGet looks a key up in the striped cache.
func (p *Prover) cacheGet(key string) (bool, bool) {
	s := p.shard(key)
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	return v, ok
}

// cachePut records a result. Two workers racing on the same key write
// the same deterministic answer, so last-write-wins is harmless.
func (p *Prover) cachePut(key string, v bool) {
	s := p.shard(key)
	s.mu.Lock()
	s.m[key] = v
	s.mu.Unlock()
}

// maxLeafChecks bounds the number of theory checks per query.
const maxLeafChecks = 50000

// queryDesc renders a cache key as a human-readable formula description
// for the trace ("hyp => goal" for validity keys, the formula itself for
// unsat keys). Only called when tracing is on.
func queryDesc(key string) string {
	body := key[2:] // strip the "V\x00" / "U\x00" tag
	if i := strings.IndexByte(body, 0); i >= 0 {
		return body[:i] + " => " + body[i+1:]
	}
	return body
}

// Valid reports whether hyp ⇒ goal is valid. This is the paper's prover
// interface for the cube search: F_V asks Valid(cube, φ) for every
// candidate cube (Section 4.1). Safe for concurrent use.
func (p *Prover) Valid(hyp, goal form.Formula) bool {
	key := "V\x00" + hyp.String() + "\x00" + goal.String()
	return p.decide("valid", key, form.MkAnd(hyp, form.MkNot(goal)))
}

// Unsat reports whether f is definitely unsatisfiable (used for the
// enforce invariant F_V(false) of Section 5.1 and Newton's path
// conditions). Safe for concurrent use.
func (p *Prover) Unsat(f form.Formula) bool {
	return p.decide("unsat", "U\x00"+f.String(), f)
}

// decide answers one query (unsat of f under the key's kind) through
// the cache, the cancellation fast path and the budgeted search.
func (p *Prover) decide(kind, key string, f form.Formula) bool {
	p.calls.Add(1)
	if !p.DisableCache {
		if v, ok := p.cacheGet(key); ok {
			p.cacheHits.Add(1)
			if p.Trace != nil {
				p.Trace.ProverQuery(kind, queryDesc(key), len(key), 0, v, true, false)
			}
			return v
		}
	}
	// Fast path: the run is already cancelled. Answer "could not prove"
	// without searching, and without poisoning the cache.
	if p.Budget.Cancelled() {
		p.gaveUp.Add(1)
		p.cancels.Add(1)
		if p.Trace != nil {
			p.Trace.ProverQuery(kind, queryDesc(key), len(key), 0, false, false, true)
		}
		return false
	}
	// Remote tier, strictly behind the local cache: a trusted shared
	// verdict short-circuits the search (and warms the local cache so
	// the next identical query never leaves the process); any other
	// outcome falls through to the local decision procedure. The counted
	// entry point (calls) and verdict are identical either way, so
	// remote hits can never change the run's output.
	if p.Remote != nil {
		if v, ok := p.Remote.Lookup(key); ok {
			if !p.DisableCache {
				p.cachePut(key, v)
			}
			if p.Trace != nil {
				p.Trace.ProverQuery(kind, queryDesc(key), len(key), 0, v, true, false)
			}
			return v
		}
	}
	start := time.Now()
	st := satState{budget: maxLeafChecks}
	if p.QueryTimeout > 0 {
		st.deadline = start.Add(p.QueryTimeout)
	}
	if p.Budget != nil {
		st.done = p.Budget.Context().Done()
	}
	res := !p.sat(form.NNF(f), nil, &st)
	gave := st.budget <= 0 || st.stop != stopNone
	if gave {
		p.gaveUp.Add(1)
		res = false // could not complete the search: do not claim the result
	}
	switch st.stop {
	case stopTimeout:
		p.timeouts.Add(1)
		p.Budget.Degrade("prover", budget.LimitQueryTimeout, queryDesc(key))
	case stopCancel:
		p.cancels.Add(1)
	}
	dur := time.Since(start)
	p.theoryNS.Add(int64(dur))
	// Leaf-budget exhaustion is deterministic for a given formula, so it
	// is cacheable like any other verdict. Wall-clock stops are
	// environmental — the same query could finish within the timeout on a
	// retry or a faster machine — so they are never memoized.
	if !p.DisableCache && st.stop == stopNone {
		p.cachePut(key, res)
	}
	// The remote publish condition mirrors the local memoization
	// condition exactly: only fully decided verdicts (never wall-clock
	// or cancellation stops) reach the shared cache — the ExportCache
	// contract, fleet-wide.
	if p.Remote != nil && st.stop == stopNone {
		p.Remote.Publish(key, res)
	}
	if p.Trace != nil {
		p.Trace.ProverQuery(kind, queryDesc(key), len(key), dur, res, false, gave)
	}
	return res
}

// Sat reports whether f has a model as far as the prover can tell
// (!Unsat; may answer true for formulas it cannot decide). Safe for
// concurrent use.
func (p *Prover) Sat(f form.Formula) bool { return !p.Unsat(f) }

// lit is a theory literal after polarity resolution.
type lit struct {
	op   form.RelOp // Eq, Ne, Le or Lt
	x, y form.Term
}

func (l lit) String() string { return l.x.String() + " " + l.op.String() + " " + l.y.String() }

// litOf resolves an atom assignment into a normalized theory literal.
func litOf(c form.Cmp, val bool) lit {
	switch c.Op {
	case form.Eq:
		if val {
			return lit{form.Eq, c.X, c.Y}
		}
		return lit{form.Ne, c.X, c.Y}
	case form.Ne:
		if val {
			return lit{form.Ne, c.X, c.Y}
		}
		return lit{form.Eq, c.X, c.Y}
	case form.Lt:
		if val {
			return lit{form.Lt, c.X, c.Y}
		}
		return lit{form.Le, c.Y, c.X}
	case form.Le:
		if val {
			return lit{form.Le, c.X, c.Y}
		}
		return lit{form.Lt, c.Y, c.X}
	case form.Gt:
		if val {
			return lit{form.Lt, c.Y, c.X}
		}
		return lit{form.Le, c.X, c.Y}
	default: // Ge
		if val {
			return lit{form.Le, c.Y, c.X}
		}
		return lit{form.Lt, c.X, c.Y}
	}
}

// atomKey canonicalizes an atom so that equivalent comparisons (x<y,
// y>x, ¬(x≥y)) share a key. flip reports whether the atom is the negation
// of the canonical base.
func atomKey(c form.Cmp) (key string, flip bool) {
	xs, ys := c.X.String(), c.Y.String()
	switch c.Op {
	case form.Eq, form.Ne:
		if xs > ys {
			xs, ys = ys, xs
		}
		return xs + " == " + ys, c.Op == form.Ne
	case form.Le:
		return xs + " <= " + ys, false
	case form.Lt:
		return ys + " <= " + xs, true
	case form.Gt:
		return xs + " <= " + ys, true
	default: // Ge
		return ys + " <= " + xs, false
	}
}

// stopReason says why a search was abandoned mid-query.
type stopReason uint8

const (
	stopNone    stopReason = iota
	stopTimeout            // QueryTimeout elapsed
	stopCancel             // run context cancelled
)

// checkStride is how many search nodes run between wall-clock /
// cancellation polls. Polling at nodes rather than theory leaves
// matters: a propositionally hard skeleton can burn arbitrary time
// folding constants without ever reaching a leaf. A node does O(|f|)
// work in assignAtom, so a counter increment plus a rare time.Now is
// noise.
const checkStride = 16

// satState is one query's search state: the leaf-check budget plus the
// optional wall-clock deadline and run-cancellation channel. Per-query
// (not per-Prover) so that concurrent queries cannot interfere.
type satState struct {
	budget     int
	deadline   time.Time       // zero: no per-query cap
	done       <-chan struct{} // nil: no run context
	sinceCheck int
	stop       stopReason
}

// tick polls the wall-clock limits every checkStride search nodes.
func (st *satState) tick() {
	st.sinceCheck++
	if st.sinceCheck < checkStride || st.stop != stopNone {
		return
	}
	st.sinceCheck = 0
	if st.done != nil {
		select {
		case <-st.done:
			st.stop = stopCancel
			return
		default:
		}
	}
	if !st.deadline.IsZero() && time.Now().After(st.deadline) {
		st.stop = stopTimeout
	}
}

// sat performs DPLL-style search on the boolean skeleton with theory
// checks at the leaves.
func (p *Prover) sat(f form.Formula, lits []lit, st *satState) bool {
	st.tick()
	if st.budget <= 0 || st.stop != stopNone {
		return true // give up: cannot prove unsat
	}
	switch f.(type) {
	case form.FalseF:
		return false
	case form.TrueF:
		st.budget--
		return theoryConsistent(lits)
	}
	atom := firstAtom(f)
	key, flip := atomKey(atom)
	for _, val := range []bool{true, false} {
		// assignAtom takes the truth of the canonical base atom; val is
		// the truth of the picked atom, which may be its negation.
		f2 := assignAtom(f, key, val != flip)
		if p.sat(f2, append(lits, litOf(atom, val)), st) {
			return true
		}
	}
	return false
}

// firstAtom returns the first comparison atom in f (f is in NNF and not a
// constant, so one exists).
func firstAtom(f form.Formula) form.Cmp {
	switch f := f.(type) {
	case form.Cmp:
		return f
	case form.Not:
		return firstAtom(f.F)
	case form.And:
		for _, g := range f.Fs {
			if a, ok := tryFirstAtom(g); ok {
				return a
			}
		}
	case form.Or:
		for _, g := range f.Fs {
			if a, ok := tryFirstAtom(g); ok {
				return a
			}
		}
	}
	panic(fmt.Sprintf("prover: no atom in %s", f))
}

func tryFirstAtom(f form.Formula) (form.Cmp, bool) {
	switch f := f.(type) {
	case form.Cmp:
		return f, true
	case form.Not:
		return tryFirstAtom(f.F)
	case form.And:
		for _, g := range f.Fs {
			if a, ok := tryFirstAtom(g); ok {
				return a, true
			}
		}
	case form.Or:
		for _, g := range f.Fs {
			if a, ok := tryFirstAtom(g); ok {
				return a, true
			}
		}
	}
	return form.Cmp{}, false
}

// assignAtom substitutes a truth value for every atom with the given
// canonical key and folds constants.
func assignAtom(f form.Formula, key string, val bool) form.Formula {
	switch f := f.(type) {
	case form.TrueF, form.FalseF:
		return f
	case form.Cmp:
		k, flip := atomKey(f)
		if k != key {
			return f
		}
		v := val != flip
		if v {
			return form.TrueF{}
		}
		return form.FalseF{}
	case form.Not:
		return form.MkNot(assignAtom(f.F, key, val))
	case form.And:
		out := make([]form.Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = assignAtom(g, key, val)
		}
		return form.MkAnd(out...)
	case form.Or:
		out := make([]form.Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = assignAtom(g, key, val)
		}
		return form.MkOr(out...)
	}
	return f
}

// --- Theory combination (Nelson-Oppen light) ---

// maxCombineIters bounds the CC ↔ LA equality-exchange loop.
const maxCombineIters = 6

// maxProbeVars bounds the quadratic equality probing.
const maxProbeVars = 14

// theoryConsistent decides whether a conjunction of literals is
// satisfiable modulo EUF + linear integer arithmetic. A false answer is
// definite; a true answer may be an over-approximation.
func theoryConsistent(lits []lit) bool {
	c := newCC()
	for _, l := range lits {
		switch l.op {
		case form.Eq:
			c.merge(l.x, l.y)
		case form.Ne:
			c.disequal(l.x, l.y)
		default:
			// Intern terms so their subterms participate in congruence.
			c.add(l.x)
			c.add(l.y)
			c.propagate()
		}
		if c.failed {
			return false
		}
	}

	for iter := 0; iter < maxCombineIters; iter++ {
		cons, neqs := buildLA(c, lits)
		feasible, precise := laFeasible(cons)
		if !feasible {
			return false
		}
		if !precise {
			return true // gave up: cannot prove inconsistency
		}
		// Disequalities refuted by arithmetic.
		for _, d := range neqs {
			if entailsZero(cons, d.coefs, d.k) {
				return false
			}
		}
		// Equality propagation LA → CC.
		if !propagateEqualities(c, cons) {
			if c.failed {
				return false
			}
			return true // fixpoint
		}
		if c.failed {
			return false
		}
	}
	return true
}

// buildLA constructs the linear constraint system from the literals,
// naming variables by congruence-class representative so that equalities
// known to the congruence closure transfer for free. It also returns the
// linear differences asserted non-zero (from Ne literals).
func buildLA(c *cc, lits []lit) (cons []linCons, neqs []linExpr) {
	for _, l := range lits {
		lx := linearize(c, l.x)
		ly := linearize(c, l.y)
		d := lx.sub(ly)
		switch l.op {
		case form.Eq:
			cons = append(cons,
				linCons{coefs: d.coefs, k: -d.k},
				negCons(d))
		case form.Le:
			cons = append(cons, linCons{coefs: d.coefs, k: -d.k})
		case form.Lt:
			cons = append(cons, linCons{coefs: d.coefs, k: -d.k - 1})
		case form.Ne:
			neqs = append(neqs, d)
		}
	}
	return cons, neqs
}

func negCons(d linExpr) linCons {
	m := map[string]int64{}
	for v, co := range d.coefs {
		m[v] = -co
	}
	return linCons{coefs: m, k: d.k}
}

// linearize maps a term to a linear expression over congruence-class
// keys. Non-arithmetic terms (and nonlinear applications) become opaque
// variables named by their class; classes holding an integer constant
// fold to that constant.
func linearize(c *cc, t form.Term) linExpr {
	switch t := t.(type) {
	case form.Num:
		return linExpr{coefs: map[string]int64{}, k: t.V}
	case form.Neg:
		e := linearize(c, t.X)
		for v := range e.coefs {
			e.coefs[v] = -e.coefs[v]
		}
		e.k = -e.k
		return e
	case form.Arith:
		switch t.Op {
		case form.OpAdd, form.OpSub:
			x := linearize(c, t.X)
			y := linearize(c, t.Y)
			if t.Op == form.OpAdd {
				out := linExpr{coefs: map[string]int64{}, k: x.k + y.k}
				for v, co := range x.coefs {
					out.coefs[v] += co
				}
				for v, co := range y.coefs {
					out.coefs[v] += co
				}
				return out
			}
			return x.sub(y)
		case form.OpMul:
			if n, ok := t.X.(form.Num); ok {
				y := linearize(c, t.Y)
				for v := range y.coefs {
					y.coefs[v] *= n.V
				}
				y.k *= n.V
				return y
			}
			if n, ok := t.Y.(form.Num); ok {
				x := linearize(c, t.X)
				for v := range x.coefs {
					x.coefs[v] *= n.V
				}
				x.k *= n.V
				return x
			}
		}
	}
	// Opaque: one variable named by congruence class (or its constant).
	id, ok := c.byKey[t.String()]
	if !ok {
		id = c.add(t)
	}
	if v, has := c.classConst(id); has {
		return linExpr{coefs: map[string]int64{}, k: v}
	}
	key := c.repKey(t)
	return linExpr{coefs: map[string]int64{key: 1}, k: 0}
}

// propagateEqualities probes pairs of LA variables (and constants) for
// entailed equalities and merges the corresponding congruence classes.
// It reports whether any new merge happened.
func propagateEqualities(c *cc, cons []linCons) bool {
	varSet := map[string]bool{}
	for _, cn := range cons {
		for v := range cn.coefs {
			varSet[v] = true
		}
	}
	if len(varSet) == 0 || len(varSet) > maxProbeVars {
		return false
	}
	vars := make([]string, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	// Deterministic order.
	sortStrings(vars)

	changed := false
	// Pairwise variable equalities.
	for i := 0; i < len(vars) && !c.failed; i++ {
		for j := i + 1; j < len(vars) && !c.failed; j++ {
			ni, nj := classID(vars[i]), classID(vars[j])
			if ni < 0 || nj < 0 || c.find(ni) == c.find(nj) {
				continue
			}
			d := linExpr{coefs: map[string]int64{vars[i]: 1, vars[j]: -1}}
			if entailsZero(cons, d.coefs, d.k) {
				c.mergeIDs(ni, nj)
				changed = true
			}
		}
	}
	// Variable = integer constant.
	consts := collectConstants(c)
	for _, v := range vars {
		if c.failed {
			break
		}
		ni := classID(v)
		if ni < 0 {
			continue
		}
		if _, has := c.classConst(ni); has {
			continue
		}
		for _, kv := range consts {
			d := linExpr{coefs: map[string]int64{v: 1}, k: -kv.val}
			if entailsZero(cons, d.coefs, d.k) {
				c.mergeIDs(ni, kv.id)
				changed = true
				break
			}
		}
	}
	return changed
}

type constNode struct {
	id  int
	val int64
}

func collectConstants(c *cc) []constNode {
	var out []constNode
	for _, n := range c.nodes {
		if n.parent == n.id && n.hasNum {
			out = append(out, constNode{id: n.id, val: n.numVal})
		}
	}
	return out
}

// classID parses the "c<id>" key produced by cc.repKey.
func classID(key string) int {
	if !strings.HasPrefix(key, "c") {
		return -1
	}
	n, err := strconv.Atoi(key[1:])
	if err != nil {
		return -1
	}
	return n
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
