package prover

import "sort"

// CacheEntry is one memoized query verdict, exported for durable
// persistence (internal/checkpoint). Key is the canonical query key
// ("V\x00hyp\x00goal" for validity, "U\x00formula" for unsatisfiability);
// Val is the memoized answer under the package soundness contract.
type CacheEntry struct {
	Key string `json:"k"`
	Val bool   `json:"v"`
}

// ExportCache snapshots the memo cache in canonical order: entries
// sorted by Key ascending. The ordering is part of the checkpoint
// compatibility contract (a golden test pins it), so resumed runs and
// fresh runs serialize the same cache state byte-identically regardless
// of shard layout or worker interleaving.
//
// Only fully decided verdicts live in the cache: queries abandoned on a
// wall-clock timeout or a run cancellation are never memoized (see
// decide), so an export never persists an environmental degradation.
// Safe for concurrent use, but an export racing live queries sees an
// unspecified subset; export at a quiescent point (an iteration
// boundary) for deterministic content.
func (p *Prover) ExportCache() []CacheEntry {
	var out []CacheEntry
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.RLock()
		for k, v := range s.m {
			out = append(out, CacheEntry{Key: k, Val: v})
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ImportCache warm-starts the memo cache from a previous run's export.
// Imported verdicts behave exactly like locally computed ones: a query
// matching an imported key is a cache hit and never reaches the
// decision procedures. Call before sharing the prover between
// goroutines. Entries with duplicate keys keep the last value.
func (p *Prover) ImportCache(entries []CacheEntry) {
	for _, e := range entries {
		p.cachePut(e.Key, e.Val)
	}
}

// CacheSize reports the number of memoized verdicts.
func (p *Prover) CacheSize() int {
	n := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
