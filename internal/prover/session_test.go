package prover

import (
	"context"
	"testing"
	"time"

	"predabs/internal/budget"
	"predabs/internal/form"
)

func TestSessionBasicVerdicts(t *testing.T) {
	p := New()
	s := p.NewSession()
	defer s.Close()

	s.Assert(pf(t, "x > 0"))
	v, m, _ := s.Check()
	if v != Sat || m == nil {
		t.Fatalf("x > 0: got %v, want sat with model", v)
	}
	if got, ok := m.Eval(pf(t, "x > 0")); !ok || !got {
		t.Errorf("model does not satisfy x > 0 (got %v, ok %v)", got, ok)
	}

	s.Assert(pf(t, "x < 0"))
	v, m, _ = s.Check()
	if v != Unsat || m != nil {
		t.Fatalf("x > 0 && x < 0: got %v, want unsat", v)
	}

	if p.Sessions() != 1 || p.SessionChecks() != 2 || p.ModelsExtracted() != 1 {
		t.Errorf("counters: sessions=%d checks=%d models=%d, want 1/2/1",
			p.Sessions(), p.SessionChecks(), p.ModelsExtracted())
	}
}

func TestSessionPushPop(t *testing.T) {
	p := New()
	s := p.NewSession()
	defer s.Close()

	s.Assert(pf(t, "x == 1"))
	s.Push()
	s.Assert(pf(t, "x == 2"))
	if v, _, _ := s.Check(); v != Unsat {
		t.Fatalf("inner scope: got %v, want unsat", v)
	}
	s.Pop()
	if v, _, _ := s.Check(); v != Sat {
		t.Fatalf("after pop: got %v, want sat", v)
	}
	// Nested scopes retract in LIFO order.
	s.Push()
	s.Assert(pf(t, "x < 5"))
	s.Push()
	s.Assert(pf(t, "x > 5"))
	if v, _, _ := s.Check(); v != Unsat {
		t.Fatalf("nested inner: got %v, want unsat", v)
	}
	s.Pop()
	if v, _, _ := s.Check(); v != Sat {
		t.Fatalf("nested after one pop: got %v, want sat", v)
	}
	s.Pop()
	if v, _, _ := s.Check(); v != Sat {
		t.Fatalf("nested after both pops: got %v, want sat", v)
	}
}

func TestSessionPopWithoutPushPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop without Push did not panic")
		}
	}()
	p := New()
	s := p.NewSession()
	s.Pop()
}

func TestSessionTrackedModelExtraction(t *testing.T) {
	p := New()
	s := p.NewSession()
	defer s.Close()

	// The checked formula never mentions y, but tracking y <= 0 forces the
	// model to assign it a consistent truth value.
	s.Track(pf(t, "y <= 0"))
	s.Track(pf(t, "x == y"))
	s.Assert(pf(t, "x > 3"))
	v, m, _ := s.Check()
	if v != Sat {
		t.Fatalf("got %v, want sat", v)
	}
	for _, q := range []string{"y <= 0", "x == y", "x > 3"} {
		if _, ok := m.Eval(pf(t, q)); !ok {
			t.Errorf("model does not assign %q", q)
		}
	}
	// The model must be theory-consistent as a whole: x > 3 && x == y
	// forces y > 3, so y <= 0 must be false under the model.
	xy, _ := m.Eval(pf(t, "x == y"))
	yneg, _ := m.Eval(pf(t, "y <= 0"))
	if xy && yneg {
		t.Errorf("model assigns x == y and y <= 0 under x > 3: theory-inconsistent")
	}
}

func TestSessionBlockingEnumeration(t *testing.T) {
	p := New()
	s := p.NewSession()
	defer s.Close()

	// Two free predicates over an unconstrained assertion: the blocking
	// loop must visit all four minterms, deterministically, then go unsat.
	preds := []form.Formula{pf(t, "a > 0"), pf(t, "b > 0")}
	for _, q := range preds {
		s.Track(q)
	}
	s.Assert(pf(t, "c == c"))

	var seen []string
	for {
		v, m, _ := s.Check()
		if v == Unsat {
			break
		}
		if v != Sat {
			t.Fatalf("got %v, want sat|unsat", v)
		}
		key := ""
		var lits []form.Formula
		for _, q := range preds {
			val, ok := m.Eval(q)
			if !ok {
				t.Fatalf("model misses tracked predicate %s", q)
			}
			if val {
				key += "1"
				lits = append(lits, q)
			} else {
				key += "0"
				lits = append(lits, form.NNF(form.MkNot(q)))
			}
		}
		seen = append(seen, key)
		s.Block(form.NNF(form.MkNot(form.MkAnd(lits...))))
		if len(seen) > 4 {
			t.Fatalf("enumeration did not terminate: %v", seen)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("enumerated %v, want all 4 minterms", seen)
	}
	dup := map[string]bool{}
	for _, k := range seen {
		if dup[k] {
			t.Fatalf("minterm %s enumerated twice: %v", k, seen)
		}
		dup[k] = true
	}
	// True-before-false branching in tracked registration order.
	if seen[0] != "11" {
		t.Errorf("first minterm %s, want 11 (true-first order)", seen[0])
	}
	if p.BlockingClauses() != 4 {
		t.Errorf("BlockingClauses = %d, want 4", p.BlockingClauses())
	}
}

func TestSessionCacheInterop(t *testing.T) {
	p := New()
	// An Unsat call populates the cache; the session check on the same
	// formula string answers from it without a search.
	f := form.MkAnd(pf(t, "x > 0"), pf(t, "x < 0"))
	if !p.Unsat(f) {
		t.Fatal("Unsat(x>0 && x<0) = false")
	}
	s := p.NewSession()
	defer s.Close()
	s.Assert(pf(t, "x > 0"))
	s.Assert(pf(t, "x < 0"))
	hits0 := p.CacheHits()
	if v, _, _ := s.Check(); v != Unsat {
		t.Fatalf("cached check: got %v, want unsat", v)
	}
	if p.CacheHits() != hits0+1 {
		t.Errorf("cache hits = %d, want %d (session check should hit Unsat cache)",
			p.CacheHits(), hits0+1)
	}
}

func TestSessionTimeoutNeverCached(t *testing.T) {
	p := New()
	p.QueryTimeout = 1 // 1ns: every real search times out
	s := p.NewSession()
	defer s.Close()
	// Large conjunction so the search cannot finish before the first poll.
	var fs []form.Formula
	for _, q := range []string{"a > 0", "b > 0", "c > 0", "d > 0", "e > 0", "f > 0", "g > 0"} {
		fs = append(fs, pf(t, q))
	}
	s.Assert(form.MkAnd(fs...))
	v, _, limit := s.Check()
	if v != Unknown {
		t.Skipf("search finished inside 1ns timeout (verdict %v); cannot exercise the stop path", v)
	}
	if limit != budget.LimitQueryTimeout {
		t.Errorf("limit = %q, want %q", limit, budget.LimitQueryTimeout)
	}
	if n := p.CacheSize(); n != 0 {
		t.Errorf("timed-out session check populated the cache (%d entries)", n)
	}
	if p.Timeouts() == 0 || p.GaveUp() == 0 {
		t.Errorf("timeout counters not bumped: timeouts=%d gaveUp=%d", p.Timeouts(), p.GaveUp())
	}
}

func TestSessionCancelledRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := New()
	p.Budget = budget.New(ctx, budget.Limits{}, nil)
	s := p.NewSession()
	defer s.Close()
	s.Assert(pf(t, "x > 0"))
	v, _, limit := s.Check()
	if v != Unknown || limit != budget.LimitDeadline {
		t.Fatalf("cancelled run: got %v/%q, want unknown/%q", v, limit, budget.LimitDeadline)
	}
	if p.Cancels() == 0 {
		t.Error("cancel counter not bumped")
	}
}

func TestSessionDeterministicModels(t *testing.T) {
	// The same session script must yield the same model sequence.
	run := func() []string {
		p := New()
		s := p.NewSession()
		defer s.Close()
		s.Track(pf(t, "x > 1"))
		s.Track(pf(t, "y > 2"))
		s.Assert(pf(t, "x + y > 0"))
		var out []string
		for i := 0; i < 3; i++ {
			v, m, _ := s.Check()
			if v != Sat {
				out = append(out, v.String())
				break
			}
			a, _ := m.Eval(pf(t, "x > 1"))
			b, _ := m.Eval(pf(t, "y > 2"))
			key := ""
			for _, bit := range []bool{a, b} {
				if bit {
					key += "1"
				} else {
					key += "0"
				}
			}
			out = append(out, key)
			var lits []form.Formula
			for i, q := range []string{"x > 1", "y > 2"} {
				if []bool{a, b}[i] {
					lits = append(lits, pf(t, q))
				} else {
					lits = append(lits, form.NNF(form.MkNot(pf(t, q))))
				}
			}
			s.Block(form.NNF(form.MkNot(form.MkAnd(lits...))))
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs diverge in length: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a, b)
		}
	}
}

func TestSessionUseAfterClosePanics(t *testing.T) {
	p := New()
	s := p.NewSession()
	s.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Assert on closed session did not panic")
		}
	}()
	s.Assert(form.TrueF{})
}

func TestSessionCheckIsFastEnough(t *testing.T) {
	// Smoke guard: a small blocking loop should finish instantly; if the
	// tracked-atom branching ever regresses to re-exploring blocked space
	// pathologically this will show up as a timeout in CI.
	p := New()
	s := p.NewSession()
	defer s.Close()
	preds := []string{"a > 0", "b > 0", "c > 0", "d > 0", "e > 0"}
	for _, q := range preds {
		s.Track(pf(t, q))
	}
	s.Assert(pf(t, "a + b + c + d + e > 0"))
	start := time.Now()
	n := 0
	for {
		v, m, _ := s.Check()
		if v != Sat {
			break
		}
		n++
		var lits []form.Formula
		for _, q := range preds {
			val, _ := m.Eval(pf(t, q))
			if val {
				lits = append(lits, pf(t, q))
			} else {
				lits = append(lits, form.NNF(form.MkNot(pf(t, q))))
			}
		}
		s.Block(form.NNF(form.MkNot(form.MkAnd(lits...))))
		if n > 64 {
			t.Fatal("runaway enumeration")
		}
	}
	if n == 0 {
		t.Fatal("no models at all")
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("enumeration of %d minterms took %v", n, d)
	}
}
