package prover

import (
	"context"
	"fmt"
	"testing"
	"time"

	"predabs/internal/budget"
	"predabs/internal/form"
)

// pigeonhole builds the propositionally unsatisfiable pigeonhole formula
// PHP(holes+1, holes) over boolean-flavoured atoms p_i_j == 1: every
// pigeon sits in some hole, no two pigeons share one. Its DPLL search
// visits many nodes without any single theory check dominating, which is
// exactly the shape a wall-clock limit must interrupt.
func pigeonhole(holes int) form.Formula {
	pigeons := holes + 1
	atom := func(i, j int) form.Formula {
		return form.Cmp{Op: form.Eq, X: form.Var{Name: fmt.Sprintf("p_%d_%d", i, j)}, Y: form.Num{V: 1}}
	}
	var clauses []form.Formula
	for i := 0; i < pigeons; i++ {
		var some []form.Formula
		for j := 0; j < holes; j++ {
			some = append(some, atom(i, j))
		}
		clauses = append(clauses, form.MkOr(some...))
	}
	for j := 0; j < holes; j++ {
		for i := 0; i < pigeons; i++ {
			for k := i + 1; k < pigeons; k++ {
				clauses = append(clauses, form.MkOr(form.MkNot(atom(i, j)), form.MkNot(atom(k, j))))
			}
		}
	}
	return form.MkAnd(clauses...)
}

func TestQueryTimeoutGivesUpSoundlyAndSkipsCache(t *testing.T) {
	php := pigeonhole(3)

	// Sanity: without a timeout the prover decides it.
	p := New()
	if !p.Unsat(php) {
		t.Fatal("prover cannot decide PHP(4,3) without limits")
	}

	p = New()
	bt := budget.New(context.Background(), budget.Limits{QueryTimeout: time.Nanosecond}, nil)
	p.Budget = bt
	p.QueryTimeout = time.Nanosecond
	if p.Unsat(php) {
		t.Fatal("timed-out query claimed unsat — unsound degradation")
	}
	if p.Timeouts() != 1 || p.GaveUp() != 1 {
		t.Fatalf("Timeouts=%d GaveUp=%d, want 1/1", p.Timeouts(), p.GaveUp())
	}
	evs := bt.Events()
	if len(evs) != 1 || evs[0].Stage != "prover" || evs[0].Limit != budget.LimitQueryTimeout {
		t.Fatalf("degradation log = %+v, want one prover/query-timeout event", evs)
	}

	// The timed-out verdict must not be memoized: with the limit lifted,
	// the same prover decides the query for real.
	p.QueryTimeout = 0
	if !p.Unsat(php) {
		t.Fatal("post-timeout retry did not recompute (cache poisoned by timeout)")
	}
	if p.CacheHits() != 0 {
		t.Fatalf("CacheHits = %d, want 0 (timeout result must not be cached)", p.CacheHits())
	}
	// The real verdict is cached as usual.
	if !p.Unsat(php) || p.CacheHits() != 1 {
		t.Fatalf("real verdict not cached (hits=%d)", p.CacheHits())
	}
}

func TestCancelledRunShortCircuitsQueries(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := New()
	p.Budget = budget.New(ctx, budget.Limits{}, nil)

	x := form.Var{Name: "x"}
	valid := form.Cmp{Op: form.Eq, X: x, Y: x}
	if p.Valid(form.TrueF{}, valid) {
		t.Fatal("cancelled prover claimed validity")
	}
	if p.Cancels() != 1 || p.GaveUp() != 1 {
		t.Fatalf("Cancels=%d GaveUp=%d, want 1/1", p.Cancels(), p.GaveUp())
	}

	// Nothing was cached, so a fresh uncancelled prover sharing no state
	// still decides it; and this prover decides it too once un-cancelled.
	p.Budget = nil
	if !p.Valid(form.TrueF{}, valid) {
		t.Fatal("trivially valid claim rejected after cancellation lifted")
	}
	if p.CacheHits() != 0 {
		t.Fatalf("CacheHits = %d, want 0 (cancel result must not be cached)", p.CacheHits())
	}
}

func TestMidQueryCancellation(t *testing.T) {
	php := pigeonhole(4)
	ctx, cancel := context.WithCancel(context.Background())
	p := New()
	p.Budget = budget.New(ctx, budget.Limits{}, nil)

	// Cancel concurrently with the query: whichever side wins, the answer
	// must be sound ("could not prove" or a genuine unsat) and the call
	// must return promptly.
	go cancel()
	done := make(chan bool, 1)
	go func() { done <- p.Unsat(php) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("query did not return after cancellation")
	}
}
