package prover

import (
	"time"

	"predabs/internal/budget"
	"predabs/internal/form"
)

// Verdict is the outcome of one Session.Check.
type Verdict int8

// Check outcomes. Unknown means the search was abandoned on a resource
// cap before either a model was found or unsatisfiability was proven;
// callers that enumerate models MUST treat it as "enumeration
// incomplete" and degrade, never as "no more models".
const (
	// Unknown: the check gave up (timeout, cancellation or leaf budget).
	Unknown Verdict = iota
	// Sat: a model of the asserted conjunction was found.
	Sat
	// Unsat: the asserted conjunction is definitely unsatisfiable.
	Unsat
)

// String renders the verdict for logs and tests.
func (v Verdict) String() string {
	switch v {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

// Model is a satisfying assignment extracted from the DPLL core: a truth
// value for every atom branched on during the search, keyed by the
// prover's canonical atom key. Models are immutable snapshots; they stay
// valid after the session moves on or closes.
type Model struct {
	assign map[string]bool // canonical atom key -> truth of canonical base
}

// Eval evaluates a formula under the model's atom assignment. ok is
// false when the formula mentions an atom the model does not assign
// (an atom that was neither in the checked formula nor Tracked).
func (m *Model) Eval(f form.Formula) (val, ok bool) {
	switch f := f.(type) {
	case form.TrueF:
		return true, true
	case form.FalseF:
		return false, true
	case form.Cmp:
		key, flip := atomKey(f)
		v, has := m.assign[key]
		if !has {
			return false, false
		}
		return v != flip, true
	case form.Not:
		v, has := m.Eval(f.F)
		return !v, has
	case form.And:
		for _, g := range f.Fs {
			v, has := m.Eval(g)
			if !has {
				return false, false
			}
			if !v {
				return false, true
			}
		}
		return true, true
	case form.Or:
		for _, g := range f.Fs {
			v, has := m.Eval(g)
			if !has {
				return false, false
			}
			if v {
				return true, true
			}
		}
		return false, true
	}
	return false, false
}

// trackedAtom is one atom registered via Track, with its canonical key
// and a representative comparison to rebuild theory literals from.
type trackedAtom struct {
	key  string
	c    form.Cmp
	flip bool // the representative is the negation of the canonical base
}

// binding is one canonical atom assignment along a search path.
type binding struct {
	key string
	val bool // truth of the canonical base atom
}

// Session is an incremental assertion scope over a Prover: assert
// formulas, push/pop scopes, and extract models from the DPLL core. The
// model-enumeration abstraction engine uses one session per blocking
// loop (assert the query once, then get-model / block / re-check).
//
// A Session is NOT safe for concurrent use; it is designed for the
// single coordinating goroutine of the abstraction engine. The
// underlying Prover may be shared: Check consults and populates the
// same striped cache as Valid/Unsat (keyed exactly like Unsat of the
// asserted conjunction), with the same rule that wall-clock-stopped
// checks never populate the cache — a cached verdict must be a property
// of the formula, not of the machine's load at the time.
type Session struct {
	p       *Prover
	asserts []form.Formula
	marks   []int
	tracked []trackedAtom
	keys    map[string]bool
	hits    int
	closed  bool
}

// NewSession opens an incremental session on the prover. Close it when
// done; sessions are cheap (no solver process, just a stack).
func (p *Prover) NewSession() *Session {
	p.sessions.Add(1)
	return &Session{p: p, keys: map[string]bool{}}
}

// Push opens a new assertion scope. Formulas asserted after Push are
// retracted by the matching Pop. Tracked atoms are session-global and
// survive Pop: tracking widens what models report, which stays correct
// across scopes.
func (s *Session) Push() {
	s.mustOpen()
	s.marks = append(s.marks, len(s.asserts))
}

// Pop retracts every assertion made since the matching Push.
func (s *Session) Pop() {
	s.mustOpen()
	if len(s.marks) == 0 {
		panic("prover: Session.Pop without matching Push")
	}
	n := len(s.marks) - 1
	s.asserts = s.asserts[:s.marks[n]]
	s.marks = s.marks[:n]
}

// Assert conjoins f onto the current assertion scope.
func (s *Session) Assert(f form.Formula) {
	s.mustOpen()
	s.asserts = append(s.asserts, f)
}

// Block asserts a blocking clause: semantically identical to Assert,
// but counted separately (Prover.BlockingClauses) so the enumeration
// loop's progress is visible in -stats and reports.
func (s *Session) Block(f form.Formula) {
	s.mustOpen()
	s.p.blockingClauses.Add(1)
	s.asserts = append(s.asserts, f)
}

// Track registers every atom of f for model extraction: Check keeps
// branching until all tracked atoms have truth values, so the returned
// model evaluates any formula over tracked atoms. Atoms are recorded in
// first-seen order, which (with the true-before-false branching order)
// makes the model sequence deterministic.
func (s *Session) Track(f form.Formula) {
	s.mustOpen()
	s.trackAtoms(form.NNF(f))
}

func (s *Session) trackAtoms(f form.Formula) {
	switch f := f.(type) {
	case form.Cmp:
		key, flip := atomKey(f)
		if !s.keys[key] {
			s.keys[key] = true
			s.tracked = append(s.tracked, trackedAtom{key: key, c: f, flip: flip})
		}
	case form.Not:
		s.trackAtoms(f.F)
	case form.And:
		for _, g := range f.Fs {
			s.trackAtoms(g)
		}
	case form.Or:
		for _, g := range f.Fs {
			s.trackAtoms(g)
		}
	}
}

// Check decides the current assertion stack. It returns:
//
//	Unsat, nil, ""      — the conjunction is definitely unsatisfiable;
//	Sat, model, ""      — a model was found (covering every tracked atom);
//	Unknown, nil, limit — the search was abandoned; limit is the
//	                      canonical budget.Limit* name that fired.
//
// Check shares the Prover's cache under the Unsat keyspace: a cached
// "definitely unsat" answers without searching; any other cached value
// cannot carry a model, so the search runs. Definitive results are
// cached; wall-clock stops (timeout, cancellation) never are.
func (s *Session) Check() (Verdict, *Model, string) {
	s.mustOpen()
	p := s.p
	p.sessionChecks.Add(1)
	f := form.MkAnd(s.asserts...)
	key := "U\x00" + f.String()
	if !p.DisableCache {
		if v, ok := p.cacheGet(key); ok && v {
			p.cacheHits.Add(1)
			s.hits++
			return Unsat, nil, ""
		}
	}
	// Fast path: the run is already cancelled (mirrors Prover.decide).
	if p.Budget.Cancelled() {
		p.gaveUp.Add(1)
		p.cancels.Add(1)
		return Unknown, nil, budget.LimitDeadline
	}
	start := time.Now()
	st := satState{budget: maxLeafChecks}
	if p.QueryTimeout > 0 {
		st.deadline = start.Add(p.QueryTimeout)
	}
	if p.Budget != nil {
		st.done = p.Budget.Context().Done()
	}
	m := s.satModel(form.NNF(f), nil, nil, &st)
	p.theoryNS.Add(int64(time.Since(start)))
	if m != nil {
		// A found model is definitive even if the budget ran out at that
		// exact leaf: the conjunction is satisfiable, hence not unsat.
		p.modelsExtracted.Add(1)
		if !p.DisableCache && st.stop == stopNone {
			p.cachePut(key, false)
		}
		return Sat, m, ""
	}
	if gave := st.budget <= 0 || st.stop != stopNone; gave {
		p.gaveUp.Add(1)
		switch st.stop {
		case stopTimeout:
			p.timeouts.Add(1)
			p.Budget.Degrade("prover", budget.LimitQueryTimeout, queryDesc(key))
			return Unknown, nil, budget.LimitQueryTimeout
		case stopCancel:
			p.cancels.Add(1)
			return Unknown, nil, budget.LimitDeadline
		}
		// Leaf-budget exhaustion: deterministic for the formula, so the
		// "could not prove unsat" verdict is cacheable like in decide.
		if !p.DisableCache {
			p.cachePut(key, false)
		}
		return Unknown, nil, budget.LimitProverBudget
	}
	if !p.DisableCache {
		p.cachePut(key, true)
	}
	return Unsat, nil, ""
}

// CacheHits reports how many of this session's checks were answered
// from the prover's shared cache (they also count toward the prover's
// global CacheHits). Trace spans carry it so reports can reconcile
// cache misses across both query styles.
func (s *Session) CacheHits() int { return s.hits }

// Close ends the session. Further use panics. Models already extracted
// remain valid.
func (s *Session) Close() {
	s.closed = true
	s.asserts, s.marks, s.tracked, s.keys = nil, nil, nil, nil
}

func (s *Session) mustOpen() {
	if s.closed {
		panic("prover: use of closed Session")
	}
}

// satModel is the model-extracting variant of Prover.sat: DPLL over the
// formula's boolean skeleton, then over any still-unassigned tracked
// atoms, with a theory-consistency check at each full leaf. It returns
// the first model in the deterministic branch order (formula atoms in
// discovery order, then tracked atoms in registration order; true
// before false), or nil if none was found — the caller distinguishes
// "exhausted" from "gave up" via st.
func (s *Session) satModel(f form.Formula, lits []lit, binds []binding, st *satState) *Model {
	st.tick()
	if st.budget <= 0 || st.stop != stopNone {
		return nil // give up; st records why
	}
	switch f.(type) {
	case form.FalseF:
		return nil
	case form.TrueF:
		ta, ok := s.nextTracked(binds)
		if !ok {
			st.budget--
			if theoryConsistent(lits) {
				return newModel(binds)
			}
			return nil
		}
		for _, val := range []bool{true, false} {
			// val is the truth of the representative atom as registered
			// (so a tracked predicate is tried true-first even when its
			// canonical base is its negation); the binding records the
			// canonical base's truth.
			m := s.satModel(f, append(lits, litOf(ta.c, val)),
				append(binds, binding{key: ta.key, val: val != ta.flip}), st)
			if m != nil {
				return m
			}
		}
		return nil
	}
	atom := firstAtom(f)
	key, flip := atomKey(atom)
	for _, val := range []bool{true, false} {
		f2 := assignAtom(f, key, val != flip)
		m := s.satModel(f2, append(lits, litOf(atom, val)),
			append(binds, binding{key: key, val: val != flip}), st)
		if m != nil {
			return m
		}
	}
	return nil
}

// nextTracked returns the first tracked atom not yet bound on the path.
func (s *Session) nextTracked(binds []binding) (trackedAtom, bool) {
	for _, ta := range s.tracked {
		bound := false
		for _, b := range binds {
			if b.key == ta.key {
				bound = true
				break
			}
		}
		if !bound {
			return ta, true
		}
	}
	return trackedAtom{}, false
}

// newModel snapshots the path's bindings into an immutable model.
func newModel(binds []binding) *Model {
	m := &Model{assign: make(map[string]bool, len(binds))}
	for _, b := range binds {
		m.assign[b.key] = b.val
	}
	return m
}
