package prover

import (
	"fmt"
	"sync"
	"testing"

	"predabs/internal/cparse"
	"predabs/internal/form"
)

// TestConcurrentQueries hammers one shared Prover from many goroutines
// with overlapping Valid/Unsat queries, checking (a) every answer is
// correct regardless of interleaving and (b) the atomic counters add up.
// Run under `go test -race` (part of the tier-1 verify recipe) this also
// exercises the striped cache for data races.
func TestConcurrentQueries(t *testing.T) {
	mk := func(src string) form.Formula {
		e, err := cparse.ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		f, err := form.FromCond(e)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	type query struct {
		hyp, goal string
		valid     bool
	}
	queries := []query{
		{"x == 1", "x < 2", true},
		{"x == 1", "x > 2", false},
		{"p == q && *p == 3", "*q == 3", true},
		{"i <= j && j <= i", "i == j", true},
		{"a[i] == 1 && i == j", "a[j] == 1", true},
		{"x > 0", "x > 1", false},
		{"curr != NULL && prev == NULL", "prev != curr", true},
		{"x + y == 4 && x - y == 2", "x == 3", true},
	}
	hyps := make([]form.Formula, len(queries))
	goals := make([]form.Formula, len(queries))
	for i, q := range queries {
		hyps[i] = mk(q.hyp)
		goals[i] = mk(q.goal)
	}

	p := New()
	const workers = 8
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w + r) % len(queries)
				if got := p.Valid(hyps[i], goals[i]); got != queries[i].valid {
					errs <- fmt.Sprintf("worker %d: Valid(%s => %s) = %v, want %v",
						w, queries[i].hyp, queries[i].goal, got, queries[i].valid)
					return
				}
				// Unsat of hyp ∧ ¬goal is the same question.
				f := form.MkAnd(hyps[i], form.MkNot(goals[i]))
				if got := p.Unsat(f); got != queries[i].valid {
					errs <- fmt.Sprintf("worker %d: Unsat round-trip for (%s => %s) = %v, want %v",
						w, queries[i].hyp, queries[i].goal, got, queries[i].valid)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	wantCalls := workers * rounds * 2
	if p.Calls() != wantCalls {
		t.Errorf("Calls = %d, want %d", p.Calls(), wantCalls)
	}
	// Each distinct key is computed at least once; everything else should
	// hit the cache (racing duplicates may recompute, so only a bound).
	if hits := p.CacheHits(); hits == 0 || hits >= wantCalls {
		t.Errorf("CacheHits = %d, want in (0, %d)", hits, wantCalls)
	}
	if p.SolverTime() <= 0 {
		t.Error("SolverTime should be positive after uncached queries")
	}
}
