package prover

import (
	"fmt"
	"testing"

	"predabs/internal/form"
)

func TestUninterpretedDivMod(t *testing.T) {
	p := New()
	// Division is uninterpreted but congruent.
	if !p.Valid(pf(t, "x == y"), pf(t, "x / 2 == y / 2")) {
		t.Error("congruence through / failed")
	}
	if !p.Valid(pf(t, "x == y && a == b"), pf(t, "x % a == y % b")) {
		t.Error("congruence through % failed")
	}
	// But no arithmetic facts are assumed.
	if p.Valid(pf(t, "x == 4"), pf(t, "x / 2 == 2")) {
		t.Error("division must be uninterpreted (sound incompleteness)")
	}
}

func TestNonlinearMultiplication(t *testing.T) {
	p := New()
	// x*y is uninterpreted...
	if p.Valid(pf(t, "x == 2 && y == 3"), pf(t, "x * y == 6")) {
		t.Error("nonlinear multiplication must be uninterpreted")
	}
	// ...but congruent,
	if !p.Valid(pf(t, "x == a && y == b"), pf(t, "x * y == a * b")) {
		t.Error("congruence through * failed")
	}
	// and multiplication by constants is linear.
	if !p.Valid(pf(t, "2 * x == 6"), pf(t, "x == 3")) {
		t.Error("2*x == 6 => x == 3")
	}
	if !p.Valid(pf(t, "x * 3 <= 9 && x >= 3"), pf(t, "x == 3")) {
		t.Error("x*3 <= 9 and x >= 3 => x == 3")
	}
}

func TestIntegerTightening(t *testing.T) {
	p := New()
	// Over the integers, 2x = 1 has no solution (gcd test).
	if !p.Unsat(pf(t, "2 * x == 1")) {
		t.Error("2x == 1 unsat over Z")
	}
	// x < y < x+1 has no integer solution.
	if !p.Unsat(pf(t, "x < y && y < x + 1")) {
		t.Error("no integer strictly between x and x+1")
	}
}

func TestDeepCongruenceChains(t *testing.T) {
	p := New()
	if !p.Valid(pf(t, "a == b && b == c && c == d && d == e"), pf(t, "a->next->next == e->next->next")) {
		t.Error("deep field congruence")
	}
	if !p.Valid(pf(t, "p == q"), pf(t, "*(*(p)) == *(*(q))")) {
		t.Error("nested deref congruence")
	}
}

func TestBudgetGiveUpIsConservative(t *testing.T) {
	p := New()
	p.DisableCache = true
	// A formula with many atoms forces search work; the prover must never
	// claim validity when it gives up.
	big := form.Formula(form.TrueF{})
	for i := 0; i < 24; i++ {
		big = form.MkAnd(big, pf(t, fmt.Sprintf("x%d == 0 || x%d == 1", i, i)))
	}
	goal := pf(t, "x0 == 2")
	if p.Valid(big, goal) {
		t.Error("claimed an invalid implication")
	}
}

func TestValidIsMonotoneUnderStrongerHyp(t *testing.T) {
	p := New()
	weak := pf(t, "x >= 0")
	strong := pf(t, "x >= 0 && x <= 0")
	goal := pf(t, "x == 0")
	if p.Valid(weak, goal) {
		t.Error("x>=0 alone must not imply x==0")
	}
	if !p.Valid(strong, goal) {
		t.Error("x>=0 and x<=0 imply x==0")
	}
}

func TestAddrConstantsInArithmetic(t *testing.T) {
	p := New()
	// Addresses participate in equality but have no arithmetic order.
	if !p.Valid(pf(t, "p == &x && q == &x"), pf(t, "p == q")) {
		t.Error("address equality")
	}
	if p.Valid(pf(t, "p == &x"), pf(t, "p > 0")) {
		t.Error("no arithmetic facts about addresses beyond non-NULL")
	}
	if !p.Valid(pf(t, "p == &x"), pf(t, "p != 0")) {
		t.Error("&x != NULL must hold")
	}
}

func TestSelectStoreStyleReasoning(t *testing.T) {
	p := New()
	// a[i] is congruent in both the array and the index.
	// i == j+1 does NOT give i == j, so elements are not equated.
	if p.Valid(pf(t, "i == j + 1 && j == k - 1"), pf(t, "a[i] == a[j]")) {
		t.Error("i=j+1 must not equate a[i] and a[j]")
	}
	if !p.Valid(pf(t, "i == j"), pf(t, "a[i] == a[j]")) {
		t.Error("equal indexes equate elements")
	}
}

func TestMixedPointerIntComparisons(t *testing.T) {
	p := New()
	if !p.Unsat(pf(t, "p == NULL && p->val == 3 && q == p && q != NULL")) {
		t.Error("p == NULL && q == p && q != NULL is unsat")
	}
	if !p.Valid(pf(t, "curr == prev && curr != NULL"), pf(t, "prev != NULL")) {
		t.Error("equality propagates non-NULLness")
	}
}

func TestGaveUpCounter(t *testing.T) {
	p := New()
	p.Valid(pf(t, "x == 1"), pf(t, "x < 2"))
	if p.GaveUp() != 0 {
		t.Errorf("trivial query should not give up (GaveUp=%d)", p.GaveUp())
	}
}
