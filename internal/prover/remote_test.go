package prover

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"predabs/internal/breaker"
	"predabs/internal/form"
)

// TestRemoteWireFormatGolden pins the remote tier's batched wire format
// byte-for-byte: canonical (sorted, deduplicated) key order and the
// compat-hash partition field. internal/cacheserv declares the decoding
// mirror of these shapes; this golden is the drift tripwire.
func TestRemoteWireFormatGolden(t *testing.T) {
	lookup, err := encodeRemoteLookup("a1b2c3d4", []string{"V\x00y\x00g", "U\x00f", "V\x00y\x00g"})
	if err != nil {
		t.Fatalf("encodeRemoteLookup: %v", err)
	}
	wantLookup := `{"partition":"a1b2c3d4","keys":["U\u0000f","V\u0000y\u0000g"]}`
	if string(lookup) != wantLookup {
		t.Fatalf("lookup wire format drifted:\n got %s\nwant %s", lookup, wantLookup)
	}

	publish, err := encodeRemotePublish("a1b2c3d4", []CacheEntry{
		{Key: "U\x00zz", Val: false},
		{Key: "U\x00aa", Val: true},
		{Key: "U\x00zz", Val: true}, // duplicate: first occurrence wins
	})
	if err != nil {
		t.Fatalf("encodeRemotePublish: %v", err)
	}
	wantPublish := `{"partition":"a1b2c3d4","entries":[{"k":"U\u0000aa","v":true},{"k":"U\u0000zz","v":false}]}`
	if string(publish) != wantPublish {
		t.Fatalf("publish wire format drifted:\n got %s\nwant %s", publish, wantPublish)
	}

	// Partition scoping is part of the format: same payload, different
	// compat hash, different bytes.
	other, _ := encodeRemoteLookup("ffff0000", []string{"U\x00f"})
	if string(other) == string(lookup) {
		t.Fatal("partition hash does not partition the wire format")
	}
}

// fakeCache is an in-process predcached stand-in with scriptable
// behavior, speaking the /v1/lookup + /v1/publish wire format.
type fakeCache struct {
	t *testing.T

	mu        sync.Mutex
	entries   map[string]bool
	publishes [][]CacheEntry
	lookups   atomic.Int64

	// behave scripts every request; nil serves the store honestly.
	behave func(w http.ResponseWriter, r *http.Request) bool // true = handled

	srv *httptest.Server
}

func newFakeCache(t *testing.T) *fakeCache {
	fc := &fakeCache{t: t, entries: map[string]bool{}}
	fc.srv = httptest.NewServer(http.HandlerFunc(fc.handle))
	t.Cleanup(fc.srv.Close)
	return fc
}

func (fc *fakeCache) handle(w http.ResponseWriter, r *http.Request) {
	fc.mu.Lock()
	behave := fc.behave
	fc.mu.Unlock()
	if behave != nil && behave(w, r) {
		return
	}
	switch r.URL.Path {
	case "/v1/lookup":
		fc.lookups.Add(1)
		var req remoteLookupRequest
		json.NewDecoder(r.Body).Decode(&req)
		var out remoteLookupResponse
		fc.mu.Lock()
		for _, k := range req.Keys {
			if v, ok := fc.entries[k]; ok {
				out.Entries = append(out.Entries, CacheEntry{Key: k, Val: v})
			}
		}
		fc.mu.Unlock()
		json.NewEncoder(w).Encode(out)
	case "/v1/publish":
		var req remotePublishRequest
		json.NewDecoder(r.Body).Decode(&req)
		fc.mu.Lock()
		fc.publishes = append(fc.publishes, req.Entries)
		for _, e := range req.Entries {
			if _, ok := fc.entries[e.Key]; !ok {
				fc.entries[e.Key] = e.Val
			}
		}
		fc.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]int{"accepted": len(req.Entries)})
	default:
		http.NotFound(w, r)
	}
}

func testTier(t *testing.T, fc *fakeCache, mut func(*RemoteConfig)) *RemoteTier {
	t.Helper()
	cfg := RemoteConfig{
		URL:           fc.srv.URL,
		Partition:     "test-partition",
		LookupBudget:  250 * time.Millisecond, // generous: tests assert behavior, not latency
		FlushInterval: 10 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	tier := NewRemoteTier(cfg)
	t.Cleanup(tier.Close)
	return tier
}

func TestRemoteTierHitAndMiss(t *testing.T) {
	fc := newFakeCache(t)
	fc.entries["U\x00known"] = true
	tier := testTier(t, fc, nil)

	if v, ok := tier.Lookup("U\x00known"); !ok || !v {
		t.Fatalf("Lookup(known) = (%t, %t), want (true, true)", v, ok)
	}
	if _, ok := tier.Lookup("U\x00unknown"); ok {
		t.Fatal("Lookup(unknown) claimed a hit")
	}
	st := tier.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 0 fallbacks", st)
	}
}

// TestRemoteTierLookupBudget pins the non-blocking contract: a cache
// serving slower than the lookup budget yields a miss within roughly
// the budget, never a stall.
func TestRemoteTierLookupBudget(t *testing.T) {
	fc := newFakeCache(t)
	fc.behave = func(w http.ResponseWriter, r *http.Request) bool {
		time.Sleep(2 * time.Second)
		return false
	}
	tier := testTier(t, fc, func(c *RemoteConfig) {
		c.LookupBudget = 10 * time.Millisecond
		c.BreakerThreshold = 100 // keep the breaker out of this test
	})
	start := time.Now()
	if _, ok := tier.Lookup("U\x00slow"); ok {
		t.Fatal("budget-exceeded lookup claimed a hit")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("lookup blocked %v, budget was 10ms", elapsed)
	}
	if st := tier.Stats(); st.Fallbacks != 1 {
		t.Fatalf("stats = %+v, want 1 fallback", st)
	}
}

// TestRemoteTierBreakerSuspends pins the degradation ladder: threshold
// consecutive failures trip the breaker, after which lookups miss
// instantly without touching the network until the jittered reopen.
func TestRemoteTierBreakerSuspends(t *testing.T) {
	fc := newFakeCache(t)
	fc.behave = func(w http.ResponseWriter, r *http.Request) bool {
		w.WriteHeader(http.StatusInternalServerError)
		return true
	}
	tier := testTier(t, fc, func(c *RemoteConfig) {
		c.BreakerThreshold = 3
		c.BreakerReopen = time.Hour
	})
	for i := 0; i < 10; i++ {
		tier.Lookup(fmt.Sprintf("U\x00q%d", i))
	}
	st := tier.Stats()
	if st.Breaker != breaker.Open {
		t.Fatalf("breaker = %s after 10 failures (threshold 3), want open", st.Breaker)
	}
	if st.Fallbacks != 10 {
		t.Fatalf("fallbacks = %d, want 10 (every lookup degraded)", st.Fallbacks)
	}
	if got := fc.lookups.Load(); got != 0 {
		// behave handled them, so the honest handler saw none; the real
		// assertion is request count at the server.
		t.Fatalf("honest handler saw %d lookups", got)
	}
}

// TestRemoteTierGarbageIsAMiss pins that a cache serving non-JSON
// garbage degrades to local-only: every lookup is a miss, never an
// error surfaced to the prover.
func TestRemoteTierGarbageIsAMiss(t *testing.T) {
	fc := newFakeCache(t)
	fc.behave = func(w http.ResponseWriter, r *http.Request) bool {
		w.Write([]byte("\x00\xffnot json at all"))
		return true
	}
	tier := testTier(t, fc, func(c *RemoteConfig) { c.BreakerThreshold = 2 })
	for i := 0; i < 5; i++ {
		if _, ok := tier.Lookup("U\x00g"); ok {
			t.Fatal("garbage response produced a hit")
		}
	}
	if st := tier.Stats(); st.Breaker != breaker.Open {
		t.Fatalf("breaker = %s, want open after garbage responses", st.Breaker)
	}
}

// TestRemoteTierBatchedPublish pins the async publish path: verdicts
// buffer and flush in canonical key order without blocking Publish.
func TestRemoteTierBatchedPublish(t *testing.T) {
	fc := newFakeCache(t)
	tier := testTier(t, fc, nil)
	tier.Publish("U\x00zz", true)
	tier.Publish("U\x00aa", false)
	tier.Publish("U\x00mm", true)

	deadline := time.Now().Add(5 * time.Second)
	for {
		fc.mu.Lock()
		n := len(fc.entries)
		fc.mu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("publishes never flushed; server has %d entries", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	for _, batch := range fc.publishes {
		if !sort.SliceIsSorted(batch, func(i, j int) bool { return batch[i].Key < batch[j].Key }) {
			t.Fatalf("publish batch not in canonical key order: %+v", batch)
		}
	}
	if st := tier.Stats(); st.Published != 3 {
		t.Fatalf("stats = %+v, want 3 published", st)
	}
}

// TestRemoteTierVerifyQuarantine pins the poisoned-cache defense: in
// verify mode a remote answer never reaches the caller, and the first
// contradiction with the locally computed verdict benches the tier.
func TestRemoteTierVerifyQuarantine(t *testing.T) {
	fc := newFakeCache(t)
	fc.entries["U\x00poisoned"] = true // remote claims "unsat proven"
	tier := testTier(t, fc, func(c *RemoteConfig) {
		c.Verify = true
		c.VerifySample = 1
	})

	if _, ok := tier.Lookup("U\x00poisoned"); ok {
		t.Fatal("verify mode let a remote answer short-circuit")
	}
	// Local decision procedure disagrees.
	tier.Publish("U\x00poisoned", false)
	st := tier.Stats()
	if !st.Quarantined || st.Mismatches != 1 || st.Verified != 1 {
		t.Fatalf("stats = %+v, want quarantined with 1 mismatch / 1 verified", st)
	}
	// The benched tier is inert: no lookups, no publishes.
	before := fc.lookups.Load()
	if _, ok := tier.Lookup("U\x00poisoned"); ok {
		t.Fatal("quarantined tier served a hit")
	}
	if fc.lookups.Load() != before {
		t.Fatal("quarantined tier touched the network")
	}
}

// TestRemoteTierVerifyAgreementStaysLive is the happy half: matching
// verdicts keep the tier in service.
func TestRemoteTierVerifyAgreementStaysLive(t *testing.T) {
	fc := newFakeCache(t)
	fc.entries["U\x00good"] = false
	tier := testTier(t, fc, func(c *RemoteConfig) {
		c.Verify = true
		c.VerifySample = 1
	})
	tier.Lookup("U\x00good")
	tier.Publish("U\x00good", false)
	st := tier.Stats()
	if st.Quarantined || st.Verified != 1 || st.Mismatches != 0 {
		t.Fatalf("stats = %+v, want live with 1 verified / 0 mismatches", st)
	}
}

// TestRemoteTierSampleIsDeterministic pins that verify-mode sampling
// depends only on the key bytes — the "deterministic sample" the issue
// requires, stable across processes.
func TestRemoteTierSampleIsDeterministic(t *testing.T) {
	hits := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("U\x00query-%d", i)
		a := sampledForVerify(key, 4)
		if a != sampledForVerify(key, 4) {
			t.Fatalf("sampling not deterministic for %q", key)
		}
		if a {
			hits++
		}
	}
	if hits == 0 || hits == 1000 {
		t.Fatalf("sample of 1000 keys selected %d — not a sample", hits)
	}
	if !sampledForVerify("anything", 1) {
		t.Fatal("VerifySample=1 must sample every key")
	}
}

// TestNilRemoteTierZeroAlloc pins the disabled-tier contract from the
// acceptance criteria: a nil tier costs zero allocations (the prover
// additionally guards with Remote != nil, and no goroutine exists
// because only NewRemoteTier starts one).
func TestNilRemoteTierZeroAlloc(t *testing.T) {
	var tier *RemoteTier
	allocs := testing.AllocsPerRun(1000, func() {
		tier.Lookup("U\x00k")
		tier.Publish("U\x00k", true)
		tier.Quarantined()
		tier.Close()
	})
	if allocs != 0 {
		t.Fatalf("nil RemoteTier allocated %v times per op, want 0", allocs)
	}
}

// TestRemoteTierCloseStopsFlusher pins goroutine hygiene: Close joins
// the flusher and is idempotent.
func TestRemoteTierCloseStopsFlusher(t *testing.T) {
	before := runtime.NumGoroutine()
	fc := newFakeCache(t)
	tier := NewRemoteTier(RemoteConfig{URL: fc.srv.URL, Partition: "p"})
	tier.Publish("U\x00k", true)
	tier.Close()
	tier.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	// The final flush must have delivered the pending entry.
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if len(fc.entries) != 1 {
		t.Fatalf("Close did not drain the publish buffer; server has %d entries", len(fc.entries))
	}
}

// TestProverRemoteHitShortCircuits wires a tier into a real Prover:
// a trusted remote verdict must answer the query without a local
// search, produce the same verdict a local run computes, and count as
// a prover call either way (byte-identical RESULT lines).
func TestProverRemoteHitShortCircuits(t *testing.T) {
	// x < 0 && 0 < x is unsat; compute the truth locally first.
	f := form.MkAnd(
		form.MkCmp(form.Lt, form.Var{Name: "x"}, form.Num{V: 0}),
		form.MkCmp(form.Lt, form.Num{V: 0}, form.Var{Name: "x"}),
	)
	local := New()
	want := local.Unsat(f)
	key := "U\x00" + f.String()

	fc := newFakeCache(t)
	fc.entries[key] = want
	p := New()
	p.Remote = testTier(t, fc, nil)
	if got := p.Unsat(f); got != want {
		t.Fatalf("remote-backed Unsat = %t, want %t", got, want)
	}
	if p.Calls() != 1 {
		t.Fatalf("Calls() = %d, want 1 (remote hits still count entry points)", p.Calls())
	}
	if st := p.Remote.Stats(); st.Hits != 1 {
		t.Fatalf("tier stats = %+v, want 1 hit", st)
	}
	// The remote hit warmed the local cache: the repeat is a local hit,
	// not another network round trip.
	before := fc.lookups.Load()
	p.Unsat(f)
	if p.CacheHits() != 1 {
		t.Fatalf("CacheHits() = %d, want 1 (remote hit warms local cache)", p.CacheHits())
	}
	if fc.lookups.Load() != before {
		t.Fatal("repeat query went back to the network")
	}
}

// TestProverPublishesOnlyDecidedVerdicts pins the ExportCache contract
// fleet-wide: verdicts the prover refuses to memoize locally (here: a
// cancelled run) are never published remotely either.
func TestProverPublishesOnlyDecidedVerdicts(t *testing.T) {
	fc := newFakeCache(t)
	p := New()
	p.Remote = testTier(t, fc, func(c *RemoteConfig) { c.FlushInterval = 5 * time.Millisecond })

	f := form.MkCmp(form.Lt, form.Var{Name: "x"}, form.Num{V: 0})
	p.Unsat(f) // decided: satisfiable, so Unsat answers false — publishable
	time.Sleep(100 * time.Millisecond)
	fc.mu.Lock()
	published := len(fc.entries)
	fc.mu.Unlock()
	if published != 1 {
		t.Fatalf("decided verdict not published: server has %d entries, want 1", published)
	}
	if st := p.Remote.Stats(); st.Published != 1 {
		t.Fatalf("tier stats = %+v, want 1 published", st)
	}
}

// TestImportExportCacheConcurrent hammers ImportCache / ExportCache /
// live queries from many goroutines (run under -race by
// verify-extended): exports must always be sorted, internally
// consistent snapshots, and the final state must contain every import.
func TestImportExportCacheConcurrent(t *testing.T) {
	p := New()
	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				p.ImportCache([]CacheEntry{{Key: fmt.Sprintf("U\x00imp-%d-%d", g, i), Val: i%2 == 0}})
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				out := p.ExportCache()
				if !sort.SliceIsSorted(out, func(a, b int) bool { return out[a].Key < out[b].Key }) {
					t.Error("concurrent export not in canonical order")
					return
				}
			}
		}()
	}
	wg.Wait()
	out := p.ExportCache()
	if len(out) != goroutines*perG {
		t.Fatalf("final export has %d entries, want %d", len(out), goroutines*perG)
	}
	if p.CacheSize() != goroutines*perG {
		t.Fatalf("CacheSize = %d, want %d", p.CacheSize(), goroutines*perG)
	}
	// Round-trip: importing an export into a fresh prover reproduces it.
	p2 := New()
	p2.ImportCache(out)
	out2 := p2.ExportCache()
	if len(out2) != len(out) {
		t.Fatalf("round-tripped export has %d entries, want %d", len(out2), len(out))
	}
	for i := range out {
		if out[i] != out2[i] {
			t.Fatalf("round-trip diverged at %d: %+v vs %+v", i, out[i], out2[i])
		}
	}
}
