package soundness_test

import (
	"math/rand"
	"testing"

	"predabs/internal/abstract"
	"predabs/internal/alias"
	"predabs/internal/bebop"
	"predabs/internal/cinterp"
	"predabs/internal/cnorm"
	"predabs/internal/corpus"
	"predabs/internal/cparse"
	"predabs/internal/ctype"
	"predabs/internal/form"
	"predabs/internal/prover"
	"predabs/internal/spec"
)

// TestSoundnessFloppyDriver drives the instrumented floppy driver — the
// corpus subject with a real defect — through the concrete interpreter
// and checks every visited state against the abstraction built from a
// SLAM-style predicate set. This exercises the call abstraction (temps,
// post-call updates, signatures) and global predicates under realistic
// dispatch control flow.
func TestSoundnessFloppyDriver(t *testing.T) {
	p, ok := corpus.ByName("floppy")
	if !ok {
		t.Fatal("floppy missing")
	}
	parsed, err := cparse.Parse(p.Source)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := spec.Parse(p.Spec)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := spec.Instrument(parsed, sp, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	info, err := ctype.Check(inst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cnorm.Normalize(info)
	if err != nil {
		t.Fatal(err)
	}
	aa := alias.Analyze(res)

	// The predicate set SLAM converges to on this subject (spec states
	// plus the branch correlations).
	secs, err := cparse.ParsePredFile(`
global:
  locked == 1, irp != 0, irp == 2
FloppyDispatch:
  code == 4, status < 0
FlQueueRequest:
  kind == 9
`)
	if err != nil {
		t.Fatal(err)
	}
	abs, err := abstract.Abstract(res, aa, prover.New(), secs, abstract.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checker, err := bebop.Check(abs.BP, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	// The defect must be visible in the abstraction.
	if _, bad := checker.ErrorReachable(); !bad {
		t.Fatal("the floppy IRP defect must be reachable in the abstraction")
	}

	violations, checked := 0, 0
	for seed := int64(0); seed < 250; seed++ {
		r := rand.New(rand.NewSource(seed))
		env := form.NewEnv()
		args := []int64{int64(r.Intn(10)), int64(r.Intn(3) - 1), int64(r.Intn(12) - 2)}

		in := &cinterp.Interp{
			Res:  res,
			Env:  env,
			Rand: r,
			OnStmt: func(v cinterp.StmtVisit) {
				state := map[string]bool{}
				eval := func(pd abstract.Pred) {
					f := cinterp.RenameFormula(v.Rename, pd.F)
					val, err := v.Env.EvalFormula(f)
					if err != nil {
						return
					}
					state[pd.Name] = val
				}
				for _, pd := range abs.GlobalPreds {
					eval(pd)
				}
				for _, pd := range abs.LocalPreds[v.Fn] {
					eval(pd)
				}
				idxs := checker.StmtsWithOrigin(v.Fn, any(v.Stmt))
				if len(idxs) == 0 {
					return
				}
				checked++
				if !checker.StateReachable(v.Fn, idxs[0], state) {
					violations++
				}
			},
		}
		if _, _, err := in.Run(p.Entry, args); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if checked < 1000 {
		t.Fatalf("too few states checked: %d", checked)
	}
	if violations > 0 {
		t.Fatalf("%d/%d driver states outside the abstraction's invariants", violations, checked)
	}
	t.Logf("floppy driver: %d interpreted states, all inside the abstraction", checked)
}
