// Package soundness is the executable oracle for the paper's central
// theorem (Section 4.6): for any feasible path of the C program, the
// corresponding path is feasible in BP(P,E), and the boolean variables
// agree with the predicates' concrete valuations along it.
//
// Concretely: Check runs the concrete MiniC interpreter on random inputs
// and heaps, observes every executed statement, evaluates the predicate
// set in the concrete state, and verifies that the resulting bit vector
// lies inside Bebop's reachable-state set at the statement's
// boolean-program counterpart. Since Bebop computes reachability OF the
// abstraction, any unsoundness anywhere in the pipeline — weakest
// preconditions, alias pruning, cube search, call signatures, Bebop's
// fixpoint — would eventually produce a concrete state outside the
// computed invariant.
//
// The oracle is parameterized over the theorem prover (prover.Querier),
// which is what makes it the referee for the fault-injection harness in
// internal/faultinject: an injected timeout, spurious "cannot prove" or
// latency spike may only ever WEAKEN the abstraction, so every concrete
// state must still fall inside the computed reachable sets.
package soundness

import (
	"math/rand"
	"testing"

	"predabs/internal/abstract"
	"predabs/internal/alias"
	"predabs/internal/bebop"
	"predabs/internal/cast"
	"predabs/internal/cinterp"
	"predabs/internal/cnorm"
	"predabs/internal/cparse"
	"predabs/internal/ctype"
	"predabs/internal/form"
	"predabs/internal/prover"
)

// Subject is one soundness property-test case: a MiniC program, a
// predicate file, and a generator for random entry arguments (plus the
// heap they point into).
type Subject struct {
	Name  string
	Src   string
	Preds string
	Entry string
	// ArgGen builds the entry procedure's arguments for one run, storing
	// any heap cells it needs into env.
	ArgGen func(r *rand.Rand, env *form.Env) []int64
	// Runs is the number of random executions to replay.
	Runs int
}

// Check runs the full pipeline on one subject — with the given prover and
// abstraction options — and replays sub.Runs random concrete executions
// against the abstraction's invariants, failing t on any state found
// outside Bebop's reachable set.
//
// Degradation (cube budgets, cancelled budgets, fault-injected provers)
// only ever weakens the boolean program, so the check must keep passing
// under ANY prover behaviour; Bebop itself runs unlimited here because a
// truncated fixpoint under-approximates reachability and would void the
// oracle.
func Check(t testing.TB, sub Subject, pv prover.Querier, opts abstract.Options) {
	t.Helper()
	prog, err := cparse.Parse(sub.Src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := ctype.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	res, err := cnorm.Normalize(info)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	aa := alias.Analyze(res)
	secs, err := cparse.ParsePredFile(sub.Preds)
	if err != nil {
		t.Fatal(err)
	}
	abs, err := abstract.Abstract(res, aa, pv, secs, opts)
	if err != nil {
		t.Fatalf("abstract: %v", err)
	}
	checker, err := bebop.Check(abs.BP, sub.Entry)
	if err != nil {
		t.Fatal(err)
	}

	// Predicate formulas per scope.
	localPreds := abs.LocalPreds
	globalPreds := abs.GlobalPreds

	violations := 0
	checked := 0
	for seed := int64(0); seed < int64(sub.Runs); seed++ {
		r := rand.New(rand.NewSource(seed))
		env := form.NewEnv()
		args := sub.ArgGen(r, env)

		in := &cinterp.Interp{
			Res:  res,
			Env:  env,
			Rand: r,
			OnStmt: func(v cinterp.StmtVisit) {
				// Evaluate the in-scope predicates in the concrete state.
				state := map[string]bool{}
				eval := func(p abstract.Pred) {
					f := cinterp.RenameFormula(v.Rename, p.F)
					val, err := v.Env.EvalFormula(f)
					if err != nil {
						return // predicates reading unmapped cells: skip
					}
					state[p.Name] = val
				}
				for _, p := range globalPreds {
					eval(p)
				}
				for _, p := range localPreds[v.Fn] {
					eval(p)
				}
				// Locate the statement in the boolean program.
				idxs := checker.StmtsWithOrigin(v.Fn, any(v.Stmt))
				if len(idxs) == 0 {
					return
				}
				checked++
				if !checker.StateReachable(v.Fn, idxs[0], state) {
					violations++
					if violations <= 3 {
						t.Errorf("seed %d: concrete state %v at %s (stmt %q) outside Bebop's reachable set",
							seed, state, v.Fn, cast.PrintStmt(v.Stmt))
					}
				}
			},
		}
		if _, _, err := in.Run(sub.Entry, args); err != nil {
			t.Fatalf("seed %d: interpreter: %v", seed, err)
		}
	}
	if checked == 0 {
		t.Fatal("no statements were checked (origin mapping broken?)")
	}
	if violations > 0 {
		t.Fatalf("%d/%d soundness violations", violations, checked)
	}
	t.Logf("%s: %d statement states checked against the abstraction, all inside", sub.Name, checked)
}

// buildList wires up to n heap cells into a list, returning the head
// address (or 0). Cells get random val fields; next pointers follow the
// chain with a chance of early NULL.
func buildList(r *rand.Rand, env *form.Env, field string, n int) int64 {
	addrs := make([]int64, n)
	for i := 0; i < n; i++ {
		name := cellName(i)
		addrs[i] = env.AddrOfVar(name)
		env.Store(form.Sel{X: form.Var{Name: name}, Field: "val"}, int64(r.Intn(9)-4))
		env.Store(form.Sel{X: form.Var{Name: name}, Field: "mark"}, int64(r.Intn(2)))
	}
	for i := 0; i < n; i++ {
		next := int64(0)
		if i+1 < n && r.Intn(4) != 0 {
			next = addrs[i+1]
		}
		env.Store(form.Sel{X: form.Var{Name: cellName(i)}, Field: field}, next)
	}
	if r.Intn(6) == 0 {
		return 0
	}
	return addrs[0]
}

func cellName(i int) string {
	return "$cell" + string(rune('A'+i))
}

// Subjects returns the standard subject corpus: list surgery with
// aliasing (partition, mark), interprocedural signatures (foobar), loop
// arithmetic over arrays (scan), and global protocol state (lockish).
func Subjects() []Subject {
	return []Subject{
		{
			Name: "partition",
			Src: `
typedef struct cell { int val; struct cell* next; } *list;
list partition(list *l, int v) {
  list curr, prev, newl, nextCurr;
  curr = *l;
  prev = NULL;
  newl = NULL;
  while (curr != NULL) {
    nextCurr = curr->next;
    if (curr->val > v) {
      if (prev != NULL) { prev->next = nextCurr; }
      if (curr == *l) { *l = nextCurr; }
      curr->next = newl;
      newl = curr;
    } else {
      prev = curr;
    }
    curr = nextCurr;
  }
  return newl;
}
`,
			Preds: `
partition:
  curr == NULL, prev == NULL, curr->val > v, prev->val > v
`,
			Entry: "partition",
			ArgGen: func(r *rand.Rand, env *form.Env) []int64 {
				head := buildList(r, env, "next", 4)
				// The *l argument: a cell holding the head pointer.
				slot := env.AddrOfVar("$headslot")
				env.Mem[slot] = head
				return []int64{slot, int64(r.Intn(5) - 2)}
			},
			Runs: 150,
		},
		{
			Name: "mark",
			Src: `
struct node { int mark; struct node* next; };
void mark(struct node* list, struct node* h) {
  struct node* this;
  struct node* tmp;
  struct node* prev;
  struct node* hnext;
  assume(h != NULL);
  hnext = h->next;
  prev = NULL;
  this = list;
  while (this != NULL) {
    if (this->mark == 1) { break; }
    this->mark = 1;
    tmp = prev;
    prev = this;
    this = this->next;
    prev->next = tmp;
  }
  while (prev != NULL) {
    tmp = this;
    this = prev;
    prev = prev->next;
    this->next = tmp;
  }
}
`,
			Preds: `
mark:
  h == NULL, prev == h, this == h, this->next == hnext,
  prev == this, h->next == hnext, hnext->next == h
`,
			Entry: "mark",
			ArgGen: func(r *rand.Rand, env *form.Env) []int64 {
				head := buildList(r, env, "next", 4)
				// Fresh marks so the first loop traverses.
				for i := 0; i < 4; i++ {
					env.Store(form.Sel{X: form.Var{Name: cellName(i)}, Field: "mark"}, 0)
				}
				// h: some cell of the heap (possibly the head, possibly not).
				h := env.AddrOfVar(cellName(r.Intn(4)))
				return []int64{head, h}
			},
			Runs: 150,
		},
		{
			Name: "foobar",
			Src: `
int bar(int* q, int y) {
  int l1, l2;
  l1 = y;
  l2 = y - 1;
  if (*q <= y) { l1 = *q; }
  return l1;
}

void foo(int* p, int x) {
  int r;
  if (*p <= x) {
    *p = x;
  } else {
    *p = *p + x;
  }
  r = bar(p, x);
}
`,
			Preds: `
bar:
  y >= 0, *q <= y, y == l1, y > l2
foo:
  *p <= 0, x == 0, r == 0
`,
			Entry: "foo",
			ArgGen: func(r *rand.Rand, env *form.Env) []int64 {
				slot := env.AddrOfVar("$pcell")
				env.Mem[slot] = int64(r.Intn(9) - 4)
				return []int64{slot, int64(r.Intn(5) - 2)}
			},
			Runs: 300,
		},
		{
			Name: "scan",
			Src: `
int scan(int a[], int n, int key) {
  int i;
  int found;
  assume(n >= 0);
  assume(n <= 6);
  found = 0 - 1;
  i = 0;
  while (i < n) {
    if (a[i] == key) {
      found = i;
    }
    i = i + 1;
  }
  return found;
}
`,
			Preds: `
scan:
  i >= 0, i < n, n >= 0, found == 0 - 1
`,
			Entry: "scan",
			ArgGen: func(r *rand.Rand, env *form.Env) []int64 {
				arr := env.AddrOfVar("$arr")
				for i := int64(0); i < 6; i++ {
					env.Mem[arr+1+i] = int64(r.Intn(5))
				}
				return []int64{arr, int64(r.Intn(7)), int64(r.Intn(5))}
			},
			Runs: 200,
		},
		{
			Name: "lockish",
			Src: `
int locked;

void acquire(void) {
  assume(locked == 0);
  locked = 1;
}

void release(void) {
  assume(locked == 1);
  locked = 0;
}

void main(int n) {
  locked = 0;
  while (n > 0) {
    acquire();
    if (n == 1) {
      release();
    } else {
      release();
    }
    n = n - 1;
  }
}
`,
			Preds: `
global:
  locked == 1
main:
  n > 0, n == 1
`,
			Entry: "main",
			ArgGen: func(r *rand.Rand, env *form.Env) []int64 {
				return []int64{int64(r.Intn(5))}
			},
			Runs: 120,
		},
	}
}
