// Property tests driving the exported oracle (see oracle.go) over the
// standard subject corpus with a well-behaved prover: the baseline that
// the fault-injection chaos matrix (internal/faultinject) perturbs.
package soundness_test

import (
	"testing"

	"predabs/internal/abstract"
	"predabs/internal/prover"
	"predabs/internal/soundness"
)

func subjectNamed(t *testing.T, name string) soundness.Subject {
	t.Helper()
	for _, sub := range soundness.Subjects() {
		if sub.Name == name {
			return sub
		}
	}
	t.Fatalf("no subject %q", name)
	return soundness.Subject{}
}

func checkNamed(t *testing.T, name string) {
	t.Helper()
	soundness.Check(t, subjectNamed(t, name), prover.New(), abstract.DefaultOptions())
}

func TestSoundnessPartition(t *testing.T)       { checkNamed(t, "partition") }
func TestSoundnessMark(t *testing.T)            { checkNamed(t, "mark") }
func TestSoundnessInterprocedural(t *testing.T) { checkNamed(t, "foobar") }
func TestSoundnessLoopArithmetic(t *testing.T)  { checkNamed(t, "scan") }
func TestSoundnessGlobalState(t *testing.T)     { checkNamed(t, "lockish") }
