package corpus

// Synthetic device drivers standing in for the Windows DDK sources of
// Table 1 (which are proprietary). Each reproduces the control-intensive
// structure the paper describes — dispatch routines switching on request
// codes, spin-lock protected device state, and interrupt-request-packet
// (IRP) completion plumbing — and is checked against DriverSpec: locks
// are never acquired twice or released unheld, and every dispatch
// completes or pends its IRP exactly once. Only the in-development
// floppy driver contains a defect, matching the paper's findings.

// DriverSpec is the combined locking + IRP-handling discipline.
const DriverSpec = `
state {
  int locked = 0;
  int irp = 0;
}

event KeAcquireSpinLock entry {
  if (locked == 1) { abort; }
  locked = 1;
}

event KeReleaseSpinLock entry {
  if (locked == 0) { abort; }
  locked = 0;
}

event IoCompleteRequest entry {
  if (irp != 0) { abort; }
  irp = 1;
}

event IoMarkIrpPending entry {
  if (irp != 0) { abort; }
  irp = 2;
}
`

// stubs shared by every driver: the kernel interface the spec instruments.
const kernelStubs = `
void KeAcquireSpinLock(void) { }
void KeReleaseSpinLock(void) { }
void IoCompleteRequest(void) { }
void IoMarkIrpPending(void) { }
`

const floppySrc = kernelStubs + `
/* floppy: an in-development floppy controller driver. One queueing path
   marks the IRP pending and then also completes it on a late failure —
   the defect the SLAM toolkit found in the paper's internal driver. */

int motorOn;
int mediaPresent;
int queueDepth;

int FlCheckMedia(int unit) {
  int present;
  present = 0;
  KeAcquireSpinLock();
  if (unit == 0) {
    present = mediaPresent;
  }
  KeReleaseSpinLock();
  return present;
}

int FlStartMotor(int unit) {
  int ok;
  ok = 1;
  KeAcquireSpinLock();
  if (motorOn == 0) {
    motorOn = 1;
  }
  if (unit < 0) {
    ok = 0;
  }
  KeReleaseSpinLock();
  return ok;
}

void FlStopMotor(void) {
  KeAcquireSpinLock();
  motorOn = 0;
  KeReleaseSpinLock();
}

int FlQueueRequest(int kind) {
  int slot;
  KeAcquireSpinLock();
  slot = queueDepth;
  queueDepth = queueDepth + 1;
  if (kind == 9) {
    slot = 0 - 1;
  }
  KeReleaseSpinLock();
  return slot;
}

int FlReadSectors(int unit, int count) {
  int status;
  int ok;
  status = 0;
  ok = FlStartMotor(unit);
  if (ok == 0) {
    return 0 - 1;
  }
  if (count < 0) {
    status = 0 - 2;
  }
  return status;
}

int FlWriteSectors(int unit, int count) {
  int status;
  int present;
  status = 0;
  present = FlCheckMedia(unit);
  if (present == 0) {
    return 0 - 3;
  }
  if (count < 0) {
    status = 0 - 2;
  }
  return status;
}

int FlSeek(int unit, int cyl) {
  int ok;
  int status;
  status = 0;
  ok = FlStartMotor(unit);
  if (ok == 0) {
    return 0 - 1;
  }
  if (cyl < 0) {
    status = 0 - 4;
  }
  if (cyl > 79) {
    status = 0 - 4;
  }
  return status;
}

int FlRecalibrate(int unit) {
  int status;
  int tries;
  status = 0 - 5;
  tries = 0;
  while (tries < 3) {
    status = FlSeek(unit, 0);
    if (status == 0) {
      return 0;
    }
    tries = tries + 1;
  }
  return status;
}

int FlFormatTrack(int unit, int cyl, int head) {
  int status;
  int present;
  present = FlCheckMedia(unit);
  if (present == 0) {
    return 0 - 3;
  }
  status = FlSeek(unit, cyl);
  if (status != 0) {
    return status;
  }
  if (head != 0) {
    if (head != 1) {
      return 0 - 4;
    }
  }
  KeAcquireSpinLock();
  queueDepth = queueDepth + 1;
  KeReleaseSpinLock();
  return 0;
}

int FlSenseDriveStatus(int unit) {
  int v;
  KeAcquireSpinLock();
  v = motorOn;
  if (unit == 0) {
    if (mediaPresent == 1) {
      v = v + 2;
    }
  }
  KeReleaseSpinLock();
  return v;
}

int FlRetryTransfer(int unit, int count, int budget) {
  int status;
  status = 0 - 1;
  while (budget > 0) {
    status = FlReadSectors(unit, count);
    if (status == 0) {
      return 0;
    }
    status = FlRecalibrate(unit);
    budget = budget - 1;
  }
  return status;
}

void FloppyDispatch(int code, int unit, int count) {
  int status;
  status = 0;
  if (code == 1) {
    /* read */
    status = FlReadSectors(unit, count);
    IoCompleteRequest();
    return;
  }
  if (code == 2) {
    /* write */
    status = FlWriteSectors(unit, count);
    IoCompleteRequest();
    return;
  }
  if (code == 3) {
    /* motor control */
    if (count > 0) {
      status = FlStartMotor(unit);
    } else {
      FlStopMotor();
    }
    IoCompleteRequest();
    return;
  }
  if (code == 4) {
    /* queued transfer: THE BUG — after marking the IRP pending, the
       late-failure path also completes it. */
    IoMarkIrpPending();
    status = FlQueueRequest(count);
    if (status < 0) {
      IoCompleteRequest();
    }
    return;
  }
  if (code == 5) {
    /* seek */
    status = FlSeek(unit, count);
    IoCompleteRequest();
    return;
  }
  if (code == 6) {
    /* format */
    status = FlFormatTrack(unit, count, 0);
    IoCompleteRequest();
    return;
  }
  if (code == 7) {
    /* sense status */
    status = FlSenseDriveStatus(unit);
    IoCompleteRequest();
    return;
  }
  if (code == 8) {
    /* transfer with retries */
    status = FlRetryTransfer(unit, count, 3);
    if (status == 0) {
      IoCompleteRequest();
    } else {
      IoCompleteRequest();
    }
    return;
  }
  /* unknown request */
  IoCompleteRequest();
}
`

const ioctlSrc = kernelStubs + `
/* ioctl: a DDK-style control-code dispatcher. Every handler touches
   lock-protected configuration state; every path completes the IRP
   exactly once. */

int configA;
int configB;
int deviceBusy;
int statsReads;
int statsWrites;

int IoctlGetConfigA(void) {
  int v;
  KeAcquireSpinLock();
  v = configA;
  KeReleaseSpinLock();
  return v;
}

int IoctlGetConfigB(void) {
  int v;
  KeAcquireSpinLock();
  v = configB;
  KeReleaseSpinLock();
  return v;
}

int IoctlSetConfigA(int v) {
  int old;
  KeAcquireSpinLock();
  old = configA;
  if (v >= 0) {
    configA = v;
  }
  KeReleaseSpinLock();
  return old;
}

int IoctlSetConfigB(int v) {
  int old;
  KeAcquireSpinLock();
  old = configB;
  if (v >= 0) {
    configB = v;
  } else {
    configB = 0;
  }
  KeReleaseSpinLock();
  return old;
}

int IoctlMarkBusy(int flag) {
  int changed;
  changed = 0;
  KeAcquireSpinLock();
  if (deviceBusy != flag) {
    deviceBusy = flag;
    changed = 1;
  }
  KeReleaseSpinLock();
  return changed;
}

void IoctlCountRead(void) {
  KeAcquireSpinLock();
  statsReads = statsReads + 1;
  KeReleaseSpinLock();
}

void IoctlCountWrite(void) {
  KeAcquireSpinLock();
  statsWrites = statsWrites + 1;
  KeReleaseSpinLock();
}

int IoctlValidateArg(int arg, int lo, int hi) {
  if (arg < lo) {
    return 0;
  }
  if (arg > hi) {
    return 0;
  }
  return 1;
}

int IoctlQueryStats(int which) {
  int v;
  v = 0 - 1;
  KeAcquireSpinLock();
  if (which == 0) {
    v = statsReads;
  }
  if (which == 1) {
    v = statsWrites;
  }
  KeReleaseSpinLock();
  return v;
}

void IoctlResetStats(void) {
  KeAcquireSpinLock();
  statsReads = 0;
  statsWrites = 0;
  KeReleaseSpinLock();
}

int IoctlExchangeConfigs(void) {
  int t;
  KeAcquireSpinLock();
  t = configA;
  configA = configB;
  configB = t;
  KeReleaseSpinLock();
  return t;
}

void IoctlDispatch(int code, int arg) {
  int status;
  status = 0;
  if (code == 1) {
    status = IoctlGetConfigA();
    IoctlCountRead();
    IoCompleteRequest();
    return;
  }
  if (code == 2) {
    status = IoctlGetConfigB();
    IoctlCountRead();
    IoCompleteRequest();
    return;
  }
  if (code == 3) {
    status = IoctlSetConfigA(arg);
    IoctlCountWrite();
    IoCompleteRequest();
    return;
  }
  if (code == 4) {
    status = IoctlSetConfigB(arg);
    IoctlCountWrite();
    IoCompleteRequest();
    return;
  }
  if (code == 5) {
    status = IoctlMarkBusy(arg);
    if (status == 1) {
      IoCompleteRequest();
    } else {
      IoCompleteRequest();
    }
    return;
  }
  if (code == 6) {
    status = IoctlValidateArg(arg, 0, 100);
    if (status == 1) {
      status = IoctlSetConfigA(arg);
      IoctlCountWrite();
    }
    IoCompleteRequest();
    return;
  }
  if (code == 7) {
    status = IoctlQueryStats(arg);
    IoCompleteRequest();
    return;
  }
  if (code == 8) {
    IoctlResetStats();
    IoCompleteRequest();
    return;
  }
  if (code == 9) {
    status = IoctlExchangeConfigs();
    IoCompleteRequest();
    return;
  }
  IoCompleteRequest();
}
`

const openclosSrc = kernelStubs + `
/* openclos: create/open/close/cleanup handling with a reference count
   guarded by the device spin lock. */

int refCount;
int deviceStarted;
int pendingCleanup;

int OcAddRef(void) {
  int n;
  KeAcquireSpinLock();
  refCount = refCount + 1;
  n = refCount;
  KeReleaseSpinLock();
  return n;
}

int OcRelease(void) {
  int n;
  KeAcquireSpinLock();
  if (refCount > 0) {
    refCount = refCount - 1;
  }
  n = refCount;
  KeReleaseSpinLock();
  return n;
}

int OcStartDevice(void) {
  int ok;
  ok = 0;
  KeAcquireSpinLock();
  if (deviceStarted == 0) {
    deviceStarted = 1;
    ok = 1;
  }
  KeReleaseSpinLock();
  return ok;
}

int OcStopDevice(void) {
  int waiters;
  KeAcquireSpinLock();
  waiters = refCount;
  if (waiters == 0) {
    deviceStarted = 0;
  } else {
    pendingCleanup = 1;
  }
  KeReleaseSpinLock();
  return waiters;
}

int OcQueryState(void) {
  int snapshot;
  KeAcquireSpinLock();
  snapshot = deviceStarted;
  if (pendingCleanup == 1) {
    snapshot = snapshot + 2;
  }
  KeReleaseSpinLock();
  return snapshot;
}

int OcPowerDown(void) {
  int busy;
  KeAcquireSpinLock();
  busy = refCount;
  if (busy == 0) {
    deviceStarted = 0;
  }
  KeReleaseSpinLock();
  return busy;
}

int OcPowerUp(void) {
  int ok;
  KeAcquireSpinLock();
  ok = 0;
  if (deviceStarted == 0) {
    deviceStarted = 1;
    pendingCleanup = 0;
    ok = 1;
  }
  KeReleaseSpinLock();
  return ok;
}

void OpenCloseDispatch(int code) {
  int n;
  int ok;
  n = 0;
  if (code == 1) {
    /* IRP_MJ_CREATE */
    ok = OcStartDevice();
    if (ok == 1) {
      n = OcAddRef();
      IoCompleteRequest();
    } else {
      n = OcAddRef();
      IoCompleteRequest();
    }
    return;
  }
  if (code == 2) {
    /* IRP_MJ_CLOSE */
    n = OcRelease();
    if (n == 0) {
      OcStopDevice();
    }
    IoCompleteRequest();
    return;
  }
  if (code == 3) {
    /* IRP_MJ_CLEANUP: defer if references remain */
    n = OcStopDevice();
    if (n > 0) {
      IoMarkIrpPending();
    } else {
      IoCompleteRequest();
    }
    return;
  }
  if (code == 4) {
    /* query device state */
    n = OcQueryState();
    IoCompleteRequest();
    return;
  }
  if (code == 5) {
    /* power down: pend while references remain */
    n = OcPowerDown();
    if (n > 0) {
      IoMarkIrpPending();
    } else {
      IoCompleteRequest();
    }
    return;
  }
  if (code == 6) {
    ok = OcPowerUp();
    if (ok == 1) {
      IoCompleteRequest();
    } else {
      IoCompleteRequest();
    }
    return;
  }
  IoCompleteRequest();
}
`

const srdriverSrc = kernelStubs + `
/* srdriver: a serial-port style driver with transmit/receive rings and a
   lock-protected hardware shadow. */

int txHead;
int txTail;
int rxHead;
int rxTail;
int lineStatus;

int SrTxEnqueue(int ch) {
  int ok;
  ok = 0;
  KeAcquireSpinLock();
  if (txHead - txTail < 16) {
    txHead = txHead + 1;
    ok = 1;
  }
  KeReleaseSpinLock();
  return ok;
}

int SrRxDequeue(void) {
  int ch;
  ch = 0 - 1;
  KeAcquireSpinLock();
  if (rxTail < rxHead) {
    rxTail = rxTail + 1;
    ch = 0;
  }
  KeReleaseSpinLock();
  return ch;
}

int SrGetLineStatus(void) {
  int v;
  KeAcquireSpinLock();
  v = lineStatus;
  KeReleaseSpinLock();
  return v;
}

void SrPurge(void) {
  KeAcquireSpinLock();
  txHead = 0;
  txTail = 0;
  rxHead = 0;
  rxTail = 0;
  KeReleaseSpinLock();
}

int SrSetBaud(int rate) {
  int ok;
  ok = 0;
  KeAcquireSpinLock();
  if (rate >= 300) {
    if (rate <= 115200) {
      lineStatus = rate;
      ok = 1;
    }
  }
  KeReleaseSpinLock();
  return ok;
}

int SrDrainTx(int budget) {
  int pending;
  pending = 1;
  while (budget > 0) {
    KeAcquireSpinLock();
    if (txTail >= txHead) {
      pending = 0;
    } else {
      txTail = txTail + 1;
    }
    KeReleaseSpinLock();
    if (pending == 0) {
      return 0;
    }
    budget = budget - 1;
  }
  return pending;
}

int SrXonXoff(int enable) {
  int prevMode;
  KeAcquireSpinLock();
  prevMode = lineStatus;
  if (enable == 1) {
    lineStatus = 1;
  } else {
    lineStatus = 0;
  }
  KeReleaseSpinLock();
  return prevMode;
}

void SrDispatch(int code, int arg) {
  int r;
  r = 0;
  if (code == 1) {
    /* write one byte; pend when the ring is full */
    r = SrTxEnqueue(arg);
    if (r == 1) {
      IoCompleteRequest();
    } else {
      IoMarkIrpPending();
    }
    return;
  }
  if (code == 2) {
    /* read one byte; pend when no data */
    r = SrRxDequeue();
    if (r < 0) {
      IoMarkIrpPending();
    } else {
      IoCompleteRequest();
    }
    return;
  }
  if (code == 3) {
    r = SrGetLineStatus();
    IoCompleteRequest();
    return;
  }
  if (code == 4) {
    SrPurge();
    IoCompleteRequest();
    return;
  }
  if (code == 5) {
    r = SrSetBaud(arg);
    if (r == 0) {
      IoCompleteRequest();
    } else {
      IoCompleteRequest();
    }
    return;
  }
  if (code == 6) {
    /* drain: pend when the transmitter stays busy */
    r = SrDrainTx(4);
    if (r == 0) {
      IoCompleteRequest();
    } else {
      IoMarkIrpPending();
    }
    return;
  }
  if (code == 7) {
    r = SrXonXoff(arg);
    IoCompleteRequest();
    return;
  }
  IoCompleteRequest();
}
`

const logSrc = kernelStubs + `
/* log: an event-log filter driver appending records under a lock, with
   flush handling that may pend. */

int bufUsed;
int bufSize;
int dropped;
int flushing;

int LgAppend(int len) {
  int ok;
  ok = 0;
  assume(bufSize >= 0);
  KeAcquireSpinLock();
  if (len >= 0) {
    if (bufUsed + len <= bufSize) {
      bufUsed = bufUsed + len;
      ok = 1;
    } else {
      dropped = dropped + 1;
    }
  }
  KeReleaseSpinLock();
  return ok;
}

int LgBeginFlush(void) {
  int started;
  started = 0;
  KeAcquireSpinLock();
  if (flushing == 0) {
    flushing = 1;
    started = 1;
  }
  KeReleaseSpinLock();
  return started;
}

void LgEndFlush(void) {
  KeAcquireSpinLock();
  flushing = 0;
  bufUsed = 0;
  KeReleaseSpinLock();
}

int LgQueryUsage(void) {
  int v;
  KeAcquireSpinLock();
  v = bufUsed;
  KeReleaseSpinLock();
  return v;
}

int LgSetFilter(int level) {
  int old;
  KeAcquireSpinLock();
  old = dropped;
  if (level >= 0) {
    if (level <= 7) {
      dropped = 0;
    }
  }
  KeReleaseSpinLock();
  return old;
}

int LgRotate(int keep) {
  int moved;
  moved = 0;
  KeAcquireSpinLock();
  if (flushing == 0) {
    if (bufUsed > keep) {
      bufUsed = keep;
      moved = 1;
    }
  }
  KeReleaseSpinLock();
  return moved;
}

int LgAppendBatch(int count, int each) {
  int i;
  int ok;
  int written;
  written = 0;
  i = 0;
  while (i < count) {
    ok = LgAppend(each);
    if (ok == 1) {
      written = written + 1;
    }
    i = i + 1;
  }
  return written;
}

void LogDispatch(int code, int len) {
  int r;
  r = 0;
  if (code == 1) {
    r = LgAppend(len);
    IoCompleteRequest();
    return;
  }
  if (code == 2) {
    r = LgBeginFlush();
    if (r == 1) {
      LgEndFlush();
      IoCompleteRequest();
    } else {
      IoMarkIrpPending();
    }
    return;
  }
  if (code == 3) {
    r = LgQueryUsage();
    IoCompleteRequest();
    return;
  }
  if (code == 4) {
    r = LgSetFilter(len);
    IoCompleteRequest();
    return;
  }
  if (code == 5) {
    r = LgRotate(len);
    if (r == 1) {
      IoCompleteRequest();
    } else {
      IoCompleteRequest();
    }
    return;
  }
  if (code == 6) {
    r = LgAppendBatch(len, 8);
    IoCompleteRequest();
    return;
  }
  IoCompleteRequest();
}
`
