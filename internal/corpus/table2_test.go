package corpus

import (
	"testing"

	"predabs/internal/abstract"
	"predabs/internal/alias"
	"predabs/internal/bebop"
	"predabs/internal/cnorm"
	"predabs/internal/cparse"
	"predabs/internal/ctype"
	"predabs/internal/prover"
)

// TestTable2Abstraction runs C2bp over each Table 2 subject and model
// checks the result: every assert in these programs is provable with the
// given predicates, so Bebop must find no violations.
func TestTable2Abstraction(t *testing.T) {
	for _, p := range Table2() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog := cparse.MustParse(p.Source)
			info, err := ctype.Check(prog)
			if err != nil {
				t.Fatal(err)
			}
			res, err := cnorm.Normalize(info)
			if err != nil {
				t.Fatal(err)
			}
			aa := alias.AnalyzeOpts(res, alias.Options{OpenCallers: !p.GhostAliasing})
			pv := prover.New()
			secs, err := cparse.ParsePredFile(p.Preds)
			if err != nil {
				t.Fatal(err)
			}
			abs, err := abstract.Abstract(res, aa, pv, secs, abstract.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			npreds := 0
			for _, s := range secs {
				npreds += len(s.Exprs)
			}
			t.Logf("%s: %d lines, %d preds, %d prover calls", p.Name, p.Lines(), npreds, pv.Calls())
			ch, err := bebop.Check(abs.BP, p.Entry)
			if err != nil {
				t.Fatal(err)
			}
			if f, bad := ch.ErrorReachable(); bad {
				t.Errorf("assert violation at %s:%d (the predicates should prove all bounds)", f.Proc, f.Stmt)
			}
		})
	}
}
