package corpus

// Table 2 subjects. kmp and qsort follow Necula's proof-carrying-code
// examples: the properties of interest are array-index bounds, and per
// the paper "we simply had to model the bounds index >= 0 and index <=
// length(a) in order to produce the appropriate loop invariant".

const kmpSrc = `
/* Knuth-Morris-Pratt string matching over int arrays.
   fail[] is the failure function; both loops carry index-bound
   invariants that predicate abstraction must discover. */

int fail[256];

void buildFail(int pat[], int m) {
  int k;
  int q;
  assume(m >= 1);
  assume(m <= 256);
  fail[0] = 0;
  k = 0;
  q = 1;
  while (q < m) {
    assert(q >= 0);
    assert(q < m);
    while (k > 0 && pat[k] != pat[q]) {
      assert(k >= 0);
      k = fail[k - 1];
      assume(k >= 0);
    }
    if (pat[k] == pat[q]) {
      k = k + 1;
    }
    fail[q] = k;
    q = q + 1;
  }
}

int kmpMatch(int pat[], int m, int txt[], int n) {
  int i;
  int k;
  int found;
  assume(m >= 1);
  assume(m <= 256);
  assume(n >= 0);
  buildFail(pat, m);
  found = 0 - 1;
  k = 0;
  i = 0;
  while (i < n) {
L:  assert(i >= 0);
    assert(i < n);
    while (k > 0 && pat[k] != txt[i]) {
      k = fail[k - 1];
      assume(k >= 0);
    }
    if (pat[k] == txt[i]) {
      k = k + 1;
    }
    if (k == m) {
      found = i;
      k = fail[k - 1];
      assume(k >= 0);
    }
    i = i + 1;
  }
  return found;
}
`

const kmpPreds = `
buildFail:
  q >= 0, q < m, k >= 0, m >= 1
kmpMatch:
  i >= 0, i < n, k >= 0, n >= 0, m >= 1
`

const qsortSrc = `
/* Array quicksort (recursive), after the PCC qsort example: the checked
   property is that every array access stays within [lo, hi]. */

int partitionRange(int a[], int lo, int hi) {
  int pivot;
  int i;
  int j;
  int tmp;
  assume(lo >= 0);
  assume(lo < hi);
  pivot = a[hi];
  j = lo;
  i = lo;
  while (j < hi) {
L:  assert(j >= lo);
    assert(j < hi);
    assert(i >= lo);
    assert(i <= j);
    if (a[j] < pivot) {
      tmp = a[i];
      a[i] = a[j];
      a[j] = tmp;
      i = i + 1;
    }
    j = j + 1;
  }
  tmp = a[i];
  a[i] = a[hi];
  a[hi] = tmp;
  assert(i >= lo);
  assert(i <= hi);
  return i;
}

void quicksort(int a[], int lo, int hi) {
  int p;
  if (lo >= hi) {
    return;
  }
  if (lo < 0) {
    return;
  }
  p = partitionRange(a, lo, hi);
  assume(p >= lo);
  assume(p <= hi);
  quicksort(a, lo, p - 1);
  quicksort(a, p + 1, hi);
}
`

const qsortPreds = `
partitionRange:
  j >= lo, j < hi, i >= lo, i <= j, i <= j + 1, i <= hi, lo < hi, lo >= 0
quicksort:
  lo < hi, lo >= 0, p >= lo, p <= hi
`

const partitionSrc = `
/* The paper's Figure 1: destructive list partition. */

typedef struct cell { int val; struct cell* next; } *list;

list partition(list *l, int v) {
  list curr, prev, newl, nextCurr;
  curr = *l;
  prev = NULL;
  newl = NULL;
  while (curr != NULL) {
    nextCurr = curr->next;
    if (curr->val > v) {
      if (prev != NULL) { prev->next = nextCurr; }
      if (curr == *l) { *l = nextCurr; }
      curr->next = newl;
L:    newl = curr;
    } else {
      prev = curr;
    }
    curr = nextCurr;
  }
  return newl;
}
`

const partitionPreds = `
partition:
  curr == NULL, prev == NULL, curr->val > v, prev->val > v
`

const listfindSrc = `
/* Linear search in a linked list; the invariant of interest is that the
   returned cell, when non-NULL, holds the key. */

struct cell { int val; struct cell* next; };

struct cell* listfind(struct cell* l, int key) {
  struct cell* curr;
  struct cell* hit;
  hit = NULL;
  curr = l;
  while (curr != NULL) {
    if (curr->val == key) {
      hit = curr;
L:    assert(hit != NULL);
      assert(hit->val == key);
      return hit;
    }
    curr = curr->next;
  }
  return hit;
}
`

const listfindPreds = `
listfind:
  curr == NULL, hit == NULL, curr->val == key, hit->val == key
`

const reverseSrc = `
/* The paper's Figure 3: list traversal using back pointers (a simplified
   mark phase of a mark-and-sweep collector). Every pair of node pointers
   may alias, which makes this the expensive subject of Table 2. */

struct node { int mark; struct node* next; };

void mark(struct node* list, struct node* h) {
  struct node* this;
  struct node* tmp;
  struct node* prev;
  struct node* hnext;
  assume(h != NULL);
  hnext = h->next;
  prev = NULL;
  this = list;

  /* traverse list and mark, setting back pointers */
  while (this != NULL) {
    if (this->mark == 1) { break; }
    this->mark = 1;
    tmp = prev;
    prev = this;
    this = this->next;
    prev->next = tmp;
  }

  /* traverse back, resetting the pointers */
  while (prev != NULL) {
    tmp = this;
    this = prev;
    prev = prev->next;
    this->next = tmp;
  }

  assert(h->next == hnext);
}
`

const reversePreds = `
mark:
  h == NULL, prev == h, this == h, this->next == hnext,
  prev == this, h->next == hnext, hnext->next == h
`
