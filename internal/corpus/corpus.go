// Package corpus holds the MiniC programs, predicate files and
// specifications used to reproduce the paper's evaluation (Section 6):
// the Table 1 device drivers (synthetic stand-ins for the proprietary
// Windows DDK sources, with the same control-intensive dispatch/lock/IRP
// structure) and the Table 2 array- and heap-intensive programs (kmp and
// qsort after Necula's PCC examples, plus partition, listfind, reverse).
package corpus

import "strings"

// Program is one benchmark subject.
type Program struct {
	// Name matches the paper's table row.
	Name string
	// Source is the MiniC source text.
	Source string
	// Preds is the predicate input file (Table 2 programs).
	Preds string
	// Spec is the temporal-safety specification (Table 1 drivers).
	Spec string
	// Entry is the procedure SLAM starts from.
	Entry string
	// ExpectError marks subjects with a seeded defect (the paper's
	// internal floppy driver had a real IRP-handling error).
	ExpectError bool
	// GhostAliasing reproduces the paper's auxiliary-variable idiom for
	// this subject (reverse/mark; see EXPERIMENTS.md).
	GhostAliasing bool
}

// Lines counts non-blank source lines (the paper's "lines" column).
func (p Program) Lines() int {
	n := 0
	for _, l := range strings.Split(p.Source, "\n") {
		if strings.TrimSpace(l) != "" {
			n++
		}
	}
	return n
}

// Table2 returns the array/heap-intensive programs of Table 2.
func Table2() []Program {
	return []Program{
		{Name: "kmp", Source: kmpSrc, Preds: kmpPreds, Entry: "kmpMatch"},
		{Name: "qsort", Source: qsortSrc, Preds: qsortPreds, Entry: "quicksort"},
		{Name: "partition", Source: partitionSrc, Preds: partitionPreds, Entry: "partition"},
		{Name: "listfind", Source: listfindSrc, Preds: listfindPreds, Entry: "listfind"},
		{Name: "reverse", Source: reverseSrc, Preds: reversePreds, Entry: "mark", GhostAliasing: true},
	}
}

// Drivers returns the device drivers of Table 1. All are checked against
// the combined locking/IRP specification; only the in-development floppy
// driver contains an error, matching the paper's findings.
func Drivers() []Program {
	return []Program{
		{Name: "floppy", Source: floppySrc, Spec: DriverSpec, Entry: "FloppyDispatch", ExpectError: true},
		{Name: "ioctl", Source: ioctlSrc, Spec: DriverSpec, Entry: "IoctlDispatch"},
		{Name: "openclos", Source: openclosSrc, Spec: DriverSpec, Entry: "OpenCloseDispatch"},
		{Name: "srdriver", Source: srdriverSrc, Spec: DriverSpec, Entry: "SrDispatch"},
		{Name: "log", Source: logSrc, Spec: DriverSpec, Entry: "LogDispatch"},
	}
}

// ByName returns the named corpus program.
func ByName(name string) (Program, bool) {
	for _, p := range append(Table2(), Drivers()...) {
		if p.Name == name {
			return p, true
		}
	}
	return Program{}, false
}
