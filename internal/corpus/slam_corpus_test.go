package corpus

import (
	"testing"

	"predabs/internal/slam"
)

// TestSection61DriverOutcomes reproduces the paper's Section 6.1
// findings: the SLAM toolkit validates the DDK-style drivers for the
// locking and IRP-handling properties, and finds the IRP error in the
// in-development floppy driver. Convergence takes a few iterations, as
// the paper reports.
func TestSection61DriverOutcomes(t *testing.T) {
	for _, p := range Drivers() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			cfg := slam.DefaultConfig()
			cfg.MaxIterations = 30
			res, err := slam.VerifySpec(p.Source, p.Spec, p.Entry, cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %s after %d iters, %d preds, %d prover calls",
				p.Name, res.Outcome, res.Iterations, res.PredCount, res.ProverCalls)
			want := slam.Verified
			if p.ExpectError {
				want = slam.ErrorFound
			}
			if res.Outcome != want {
				t.Errorf("outcome %s, want %s (preds %v)", res.Outcome, want, res.Predicates)
			}
		})
	}
}
