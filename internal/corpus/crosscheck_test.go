package corpus

import (
	"math/rand"
	"testing"

	"predabs/internal/abstract"
	"predabs/internal/alias"
	"predabs/internal/bebop"
	"predabs/internal/bpinterp"
	"predabs/internal/cnorm"
	"predabs/internal/cparse"
	"predabs/internal/ctype"
	"predabs/internal/prover"
)

// Cross-check Bebop against the concrete boolean-program interpreter on
// the abstractions of the Table 2 corpus: whenever Bebop declares every
// assert safe, no random interpreted execution may fail one, and whenever
// Bebop reports a violation, enough random runs should reproduce it.
func TestBebopVsInterpreterOnCorpusAbstractions(t *testing.T) {
	for _, p := range Table2() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog := cparse.MustParse(p.Source)
			info, err := ctype.Check(prog)
			if err != nil {
				t.Fatal(err)
			}
			res, err := cnorm.Normalize(info)
			if err != nil {
				t.Fatal(err)
			}
			aa := alias.AnalyzeOpts(res, alias.Options{OpenCallers: !p.GhostAliasing})
			secs, err := cparse.ParsePredFile(p.Preds)
			if err != nil {
				t.Fatal(err)
			}
			abs, err := abstract.Abstract(res, aa, prover.New(), secs, abstract.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			ch, err := bebop.Check(abs.BP, p.Entry)
			if err != nil {
				t.Fatal(err)
			}
			_, bebopBad := ch.ErrorReachable()

			interpBad := false
			for seed := int64(0); seed < 200 && !interpBad; seed++ {
				in := &bpinterp.Interp{
					Prog:     abs.BP,
					Choice:   bpinterp.RandChooser{R: rand.New(rand.NewSource(seed))},
					MaxSteps: 20000,
				}
				r, err := in.Run(p.Entry)
				if err != nil {
					t.Fatal(err)
				}
				if r.Status == bpinterp.AssertFailed {
					interpBad = true
				}
			}
			if interpBad && !bebopBad {
				t.Fatal("interpreter found a violation Bebop missed (Bebop unsound)")
			}
			if bebopBad {
				t.Logf("%s: abstraction has a (possibly spurious) violation; interpreter reproduced: %v",
					p.Name, interpBad)
			} else if interpBad {
				t.Fatal("inconsistent")
			}
		})
	}
}
