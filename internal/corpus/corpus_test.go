package corpus

import (
	"testing"

	"predabs/internal/cnorm"
	"predabs/internal/cparse"
	"predabs/internal/ctype"
	"predabs/internal/spec"
)

// Every corpus program must parse, type check and normalize; predicate
// files must parse; specs must parse and instrument.
func TestCorpusWellFormed(t *testing.T) {
	for _, p := range append(Table2(), Drivers()...) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog, err := cparse.Parse(p.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			info, err := ctype.Check(prog)
			if err != nil {
				t.Fatalf("type check: %v", err)
			}
			if _, err := cnorm.Normalize(info); err != nil {
				t.Fatalf("normalize: %v", err)
			}
			if p.Preds != "" {
				if _, err := cparse.ParsePredFile(p.Preds); err != nil {
					t.Fatalf("predicates: %v", err)
				}
			}
			if p.Spec != "" {
				sp, err := spec.Parse(p.Spec)
				if err != nil {
					t.Fatalf("spec: %v", err)
				}
				if _, err := spec.Instrument(prog, sp, p.Entry); err != nil {
					t.Fatalf("instrument: %v", err)
				}
			}
			if p.Lines() < 10 {
				t.Errorf("suspiciously small: %d lines", p.Lines())
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("kmp"); !ok {
		t.Error("kmp missing")
	}
	if _, ok := ByName("floppy"); !ok {
		t.Error("floppy missing")
	}
	if _, ok := ByName("nosuch"); ok {
		t.Error("nosuch found")
	}
}
