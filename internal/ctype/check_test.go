package ctype

import (
	"strings"
	"testing"

	"predabs/internal/cast"
	"predabs/internal/cparse"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	prog, err := cparse.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(prog)
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return info
}

func TestCheckPartition(t *testing.T) {
	info := mustCheck(t, `
typedef struct cell { int val; struct cell* next; } *list;
list partition(list *l, int v) {
  list curr, prev, newl, nextCurr;
  curr = *l;
  prev = NULL;
  newl = NULL;
  while (curr != NULL) {
    nextCurr = curr->next;
    if (curr->val > v) {
      if (prev != NULL) { prev->next = nextCurr; }
      if (curr == *l) { *l = nextCurr; }
      curr->next = newl;
      newl = curr;
    } else {
      prev = curr;
    }
    curr = nextCurr;
  }
  return newl;
}
`)
	ct, ok := info.VarType("partition", "curr")
	if !ok {
		t.Fatal("curr unbound")
	}
	pt, ok := ct.(cast.PointerType)
	if !ok {
		t.Fatalf("curr type %s", ct)
	}
	st, ok := pt.Elem.(cast.StructType)
	if !ok || st.Name != "cell" {
		t.Fatalf("curr pointee %s", pt.Elem)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct{ src, wantSub string }{
		{"void f(void) { x = 1; }", "undefined variable"},
		{"void f(int x) { x = y; }", "undefined variable"},
		{"void f(int x) { int x; x = 1; }", "duplicate"},
		{"int g; int g; void f(void) { }", "duplicate global"},
		{"void f(int x) { *x = 1; }", "dereference"},
		{"struct s { int a; }; void f(struct s v) { v.b = 1; }", "no field"},
		{"void f(int x) { return 1; }", "return with value in void"},
		{"int f(int x) { return; }", "return without value"},
		{"void f(int* p) { p = 1; }", "cannot assign"},
		{"void f(int x) { 1 = x; }", "not an lvalue"},
		{"void f(int x) { g(x); }", "undefined function"},
		{"int h(int a, int b) { return a; } void f(int x) { x = h(x); }", "want 2"},
		{"struct s { int a; }; void f(struct s* p) { p->b = 1; }", "no field"},
		{"void f(int x) { &5; }", "must be a call"},
	}
	for _, c := range cases {
		_, err := check(t, c.src)
		if err == nil {
			t.Errorf("%q: expected error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%q: error %q does not contain %q", c.src, err, c.wantSub)
		}
	}
}

func TestCheckNullAssignAndCompare(t *testing.T) {
	mustCheck(t, `
struct s { int a; };
void f(struct s* p) {
  p = NULL;
  if (p == NULL) { p = NULL; }
  if (NULL != p) { }
}
`)
}

func TestCheckPointerCondition(t *testing.T) {
	mustCheck(t, `
struct s { int a; };
void f(struct s* p) {
  if (p) { }
  while (!p) { }
}
`)
}

func TestCheckAddrOf(t *testing.T) {
	info := mustCheck(t, `
void f(int x) {
  int* p;
  p = &x;
  *p = 3;
}
`)
	_ = info
}

func TestCheckArrayIndexing(t *testing.T) {
	mustCheck(t, `
void f(int a[], int n) {
  int i;
  i = 0;
  while (i < n) {
    a[i] = a[i] + 1;
    i = i + 1;
  }
}
`)
}

func TestCheckPointerArithmetic(t *testing.T) {
	info := mustCheck(t, `
void f(int* p, int i) {
  int x;
  x = *(p + i);
}
`)
	_ = info
}

func TestCheckCallTypes(t *testing.T) {
	mustCheck(t, `
struct s { int a; };
int get(struct s* p) { return p->a; }
void f(struct s* p) {
  int x;
  x = get(p);
}
`)
	_, err := check(t, `
struct s { int a; };
int get(struct s* p) { return p->a; }
void f(int y) {
  int x;
  x = get(y);
}
`)
	if err == nil {
		t.Error("expected arg type error")
	}
}

func TestIsGlobal(t *testing.T) {
	info := mustCheck(t, `
int g;
int h;
void f(int g) { int l; l = g + h; }
`)
	if info.IsGlobal("f", "g") {
		t.Error("g is shadowed by the parameter")
	}
	if !info.IsGlobal("f", "h") {
		t.Error("h is global")
	}
	if info.IsGlobal("f", "l") {
		t.Error("l is local")
	}
}

func TestCheckStructValueField(t *testing.T) {
	mustCheck(t, `
struct pt { int x; int y; };
void f(void) {
  struct pt p;
  p.x = 1;
  p.y = p.x;
}
`)
}

func TestCheckUndefinedStruct(t *testing.T) {
	_, err := check(t, "void f(struct nosuch* p) { }")
	if err == nil || !strings.Contains(err.Error(), "undefined struct") {
		t.Errorf("got %v", err)
	}
}
