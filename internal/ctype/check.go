// Package ctype implements the MiniC type checker. It resolves variable
// references against function and global scopes, checks field accesses
// against struct definitions, and records the type of every expression for
// later phases (normalization, weakest preconditions, points-to analysis).
package ctype

import (
	"fmt"

	"predabs/internal/cast"
	"predabs/internal/ctok"
)

// Info is the result of type checking a program.
type Info struct {
	Prog *cast.Program
	// Types records the type of every expression node.
	Types map[cast.Expr]cast.Type
	// FuncVars maps a function name to its variable environment
	// (parameters and locals). Globals are in GlobalVars.
	FuncVars map[string]map[string]cast.Type
	// GlobalVars maps global variable names to types.
	GlobalVars map[string]cast.Type
}

// TypeOf returns the recorded type of e, or IntType if unknown (the checker
// records every expression of well-typed programs).
func (in *Info) TypeOf(e cast.Expr) cast.Type {
	if t, ok := in.Types[e]; ok {
		return t
	}
	return cast.IntType{}
}

// VarType resolves the type of name as seen from inside function fn
// (locals/params shadow globals). ok is false if the name is unbound.
func (in *Info) VarType(fn, name string) (cast.Type, bool) {
	if fv, ok := in.FuncVars[fn]; ok {
		if t, ok := fv[name]; ok {
			return t, true
		}
	}
	t, ok := in.GlobalVars[name]
	return t, ok
}

// IsGlobal reports whether name resolves to a global inside function fn.
func (in *Info) IsGlobal(fn, name string) bool {
	if fv, ok := in.FuncVars[fn]; ok {
		if _, shadowed := fv[name]; shadowed {
			return false
		}
	}
	_, ok := in.GlobalVars[name]
	return ok
}

type checker struct {
	prog *cast.Program
	info *Info
	errs []error
	fn   *cast.FuncDef
	vars map[string]cast.Type
}

// Check type checks prog. On success it returns the collected Info; on
// failure it returns the first error (Info is still returned, partially
// filled, to aid diagnostics).
func Check(prog *cast.Program) (*Info, error) {
	c := &checker{
		prog: prog,
		info: &Info{
			Prog:       prog,
			Types:      map[cast.Expr]cast.Type{},
			FuncVars:   map[string]map[string]cast.Type{},
			GlobalVars: map[string]cast.Type{},
		},
	}
	for _, g := range prog.Globals {
		if _, dup := c.info.GlobalVars[g.Name]; dup {
			c.errorf(g.P, "duplicate global %q", g.Name)
		}
		c.resolveType(g.P, g.Type)
		c.info.GlobalVars[g.Name] = g.Type
	}
	seen := map[string]bool{}
	for _, f := range prog.Funcs {
		if seen[f.Name] {
			c.errorf(f.P, "duplicate function %q", f.Name)
		}
		seen[f.Name] = true
	}
	for _, f := range prog.Funcs {
		c.checkFunc(f)
	}
	if len(c.errs) > 0 {
		return c.info, c.errs[0]
	}
	return c.info, nil
}

func (c *checker) errorf(pos ctok.Pos, format string, args ...any) {
	if len(c.errs) < 50 {
		c.errs = append(c.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
	}
}

// resolveType verifies that struct references name defined structs.
func (c *checker) resolveType(pos ctok.Pos, t cast.Type) {
	switch t := t.(type) {
	case cast.StructType:
		if c.prog.Struct(t.Name) == nil {
			c.errorf(pos, "undefined struct %q", t.Name)
		}
	case cast.PointerType:
		c.resolveType(pos, t.Elem)
	case cast.ArrayType:
		c.resolveType(pos, t.Elem)
	}
}

func (c *checker) checkFunc(f *cast.FuncDef) {
	c.fn = f
	c.vars = map[string]cast.Type{}
	c.info.FuncVars[f.Name] = c.vars
	for _, p := range f.Params {
		if _, dup := c.vars[p.Name]; dup {
			c.errorf(f.P, "%s: duplicate parameter %q", f.Name, p.Name)
		}
		c.resolveType(f.P, p.Type)
		c.vars[p.Name] = p.Type
	}
	// MiniC uses function-scoped locals (the normalizer hoists them);
	// collect declarations first so forward gotos past decls are fine.
	c.collectDecls(f.Body)
	c.checkStmt(f.Body)
}

func (c *checker) collectDecls(s cast.Stmt) {
	switch s := s.(type) {
	case *cast.Block:
		for _, sub := range s.Stmts {
			c.collectDecls(sub)
		}
	case *cast.DeclStmt:
		if _, dup := c.vars[s.Name]; dup {
			c.errorf(s.Pos(), "%s: duplicate local %q", c.fn.Name, s.Name)
		}
		c.resolveType(s.Pos(), s.Type)
		c.vars[s.Name] = s.Type
	case *cast.IfStmt:
		c.collectDecls(s.Then)
		if s.Else != nil {
			c.collectDecls(s.Else)
		}
	case *cast.WhileStmt:
		c.collectDecls(s.Body)
	case *cast.LabeledStmt:
		c.collectDecls(s.Stmt)
	}
}

func (c *checker) checkStmt(s cast.Stmt) {
	switch s := s.(type) {
	case *cast.Block:
		for _, sub := range s.Stmts {
			c.checkStmt(sub)
		}
	case *cast.DeclStmt:
		if s.Init != nil {
			it := c.checkExpr(s.Init)
			c.checkAssignable(s.Pos(), s.Type, it)
		}
	case *cast.AssignStmt:
		lt := c.checkExpr(s.Lhs)
		rt := c.checkExpr(s.Rhs)
		if !c.isLvalue(s.Lhs) {
			c.errorf(s.Pos(), "left side of assignment is not an lvalue: %s", s.Lhs)
		}
		c.checkAssignable(s.Pos(), lt, rt)
	case *cast.ExprStmt:
		if _, ok := s.X.(*cast.Call); !ok {
			c.errorf(s.Pos(), "expression statement must be a call: %s", s.X)
		}
		c.checkExpr(s.X)
	case *cast.IfStmt:
		c.checkCond(s.Cond)
		c.checkStmt(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
	case *cast.WhileStmt:
		c.checkCond(s.Cond)
		c.checkStmt(s.Body)
	case *cast.LabeledStmt:
		c.checkStmt(s.Stmt)
	case *cast.ReturnStmt:
		ret := c.fn.Ret
		if s.X == nil {
			if _, isVoid := ret.(cast.VoidType); !isVoid {
				c.errorf(s.Pos(), "%s: return without value in non-void function", c.fn.Name)
			}
		} else {
			xt := c.checkExpr(s.X)
			if _, isVoid := ret.(cast.VoidType); isVoid {
				c.errorf(s.Pos(), "%s: return with value in void function", c.fn.Name)
			} else {
				c.checkAssignable(s.Pos(), ret, xt)
			}
		}
	case *cast.AssertStmt:
		c.checkCond(s.X)
	case *cast.AssumeStmt:
		c.checkCond(s.X)
	case *cast.GotoStmt, *cast.BreakStmt, *cast.ContinueStmt, *cast.EmptyStmt:
		// Nothing to check; label resolution happens in the normalizer.
	default:
		c.errorf(s.Pos(), "unknown statement %T", s)
	}
}

func (c *checker) checkCond(e cast.Expr) {
	t := c.checkExpr(e)
	switch t.(type) {
	case cast.IntType, cast.PointerType:
		// int is boolean-valued; pointers test non-NULL, as in C.
	default:
		c.errorf(e.Pos(), "condition has non-scalar type %s: %s", t, e)
	}
}

// checkAssignable allows int:=int, T*:=T*, T*:=NULL, and int:=pointer
// comparisons are handled in checkExpr; everything else is an error.
func (c *checker) checkAssignable(pos ctok.Pos, dst, src cast.Type) {
	if cast.TypesEqual(dst, src) {
		return
	}
	if cast.IsPointer(dst) {
		if _, srcIsNull := src.(nullType); srcIsNull {
			return
		}
		// Array decays to pointer to element.
		if at, ok := src.(cast.ArrayType); ok {
			if cast.TypesEqual(dst, cast.PointerType{Elem: at.Elem}) {
				return
			}
		}
	}
	c.errorf(pos, "cannot assign %s to %s", src, dst)
}

// nullType is the internal type of the NULL literal; it is assignable to
// any pointer and comparable with any pointer.
type nullType struct{ cast.IntType }

func (c *checker) isLvalue(e cast.Expr) bool {
	switch e := e.(type) {
	case *cast.VarRef:
		return true
	case *cast.Unary:
		return e.Op == cast.Deref_
	case *cast.Field:
		if e.Arrow {
			return true
		}
		return c.isLvalue(e.X)
	case *cast.Index:
		return true
	}
	return false
}

func (c *checker) lookupVar(pos ctok.Pos, name string) cast.Type {
	if t, ok := c.vars[name]; ok {
		return t
	}
	if t, ok := c.info.GlobalVars[name]; ok {
		return t
	}
	c.errorf(pos, "%s: undefined variable %q", c.fn.Name, name)
	return cast.IntType{}
}

func (c *checker) structOf(pos ctok.Pos, t cast.Type) *cast.StructDef {
	st, ok := t.(cast.StructType)
	if !ok {
		c.errorf(pos, "expected struct type, got %s", t)
		return nil
	}
	def := c.prog.Struct(st.Name)
	if def == nil {
		c.errorf(pos, "undefined struct %q", st.Name)
	}
	return def
}

func (c *checker) checkExpr(e cast.Expr) cast.Type {
	t := c.exprType(e)
	c.info.Types[e] = t
	return t
}

func (c *checker) exprType(e cast.Expr) cast.Type {
	switch e := e.(type) {
	case *cast.IntLit:
		return cast.IntType{}
	case *cast.NullLit:
		return nullType{}
	case *cast.VarRef:
		return c.lookupVar(e.Pos(), e.Name)
	case *cast.Unary:
		xt := c.checkExpr(e.X)
		switch e.Op {
		case cast.Neg, cast.Not:
			if _, ok := xt.(cast.IntType); !ok {
				if _, isNull := xt.(nullType); !isNull {
					if e.Op == cast.Neg {
						c.errorf(e.Pos(), "operand of %s must be int, got %s", e.Op, xt)
					}
					// !p on a pointer means p == NULL; allow it.
				}
			}
			return cast.IntType{}
		case cast.Deref_:
			if elem, ok := cast.Deref(xt); ok {
				return elem
			}
			c.errorf(e.Pos(), "cannot dereference non-pointer %s (type %s)", e.X, xt)
			return cast.IntType{}
		case cast.AddrOf:
			if !c.isLvalue(e.X) {
				c.errorf(e.Pos(), "cannot take address of non-lvalue %s", e.X)
			}
			return cast.PointerType{Elem: xt}
		}
	case *cast.Binary:
		xt := c.checkExpr(e.X)
		yt := c.checkExpr(e.Y)
		switch {
		case e.Op == cast.Eq || e.Op == cast.Ne:
			if !comparable(xt, yt) {
				c.errorf(e.Pos(), "incomparable operands %s and %s", xt, yt)
			}
			return cast.IntType{}
		case e.Op.IsRelational() || e.Op.IsLogical():
			// <,<=,>,>= over ints; &&,|| over scalars.
			return cast.IntType{}
		case e.Op == cast.Add || e.Op == cast.Sub:
			// Pointer arithmetic under the logical memory model: p+i : typeof(p).
			if cast.IsPointer(xt) {
				return xt
			}
			if at, ok := xt.(cast.ArrayType); ok {
				return cast.PointerType{Elem: at.Elem}
			}
			return cast.IntType{}
		default:
			return cast.IntType{}
		}
	case *cast.Field:
		xt := c.checkExpr(e.X)
		base := xt
		if e.Arrow {
			elem, ok := cast.Deref(xt)
			if !ok {
				c.errorf(e.Pos(), "-> on non-pointer %s (type %s)", e.X, xt)
				return cast.IntType{}
			}
			base = elem
		}
		def := c.structOf(e.Pos(), base)
		if def == nil {
			return cast.IntType{}
		}
		fd := def.Field(e.Name)
		if fd == nil {
			c.errorf(e.Pos(), "struct %s has no field %q", def.Name, e.Name)
			return cast.IntType{}
		}
		return fd.Type
	case *cast.Index:
		xt := c.checkExpr(e.X)
		c.checkExpr(e.I)
		if elem, ok := cast.Deref(xt); ok {
			return elem
		}
		c.errorf(e.Pos(), "indexing non-array %s (type %s)", e.X, xt)
		return cast.IntType{}
	case *cast.Call:
		f := c.prog.Func(e.Name)
		if f == nil {
			c.errorf(e.Pos(), "call to undefined function %q", e.Name)
			for _, a := range e.Args {
				c.checkExpr(a)
			}
			return cast.IntType{}
		}
		if len(e.Args) != len(f.Params) {
			c.errorf(e.Pos(), "call to %s with %d args, want %d", e.Name, len(e.Args), len(f.Params))
		}
		for i, a := range e.Args {
			at := c.checkExpr(a)
			if i < len(f.Params) {
				c.checkAssignable(a.Pos(), f.Params[i].Type, at)
			}
		}
		return f.Ret
	}
	c.errorf(e.Pos(), "unknown expression %T", e)
	return cast.IntType{}
}

func comparable(a, b cast.Type) bool {
	_, aNull := a.(nullType)
	_, bNull := b.(nullType)
	switch {
	case aNull || bNull:
		return true
	case cast.TypesEqual(a, b):
		return true
	case cast.IsPointer(a) && cast.IsPointer(b):
		return true
	}
	// Array/pointer comparison after decay.
	if at, ok := a.(cast.ArrayType); ok {
		return comparable(cast.PointerType{Elem: at.Elem}, b)
	}
	if bt, ok := b.(cast.ArrayType); ok {
		return comparable(a, cast.PointerType{Elem: bt.Elem})
	}
	return false
}
