// Package breaker implements the circuit breaker shared by the fleet
// frontend (per-backend dispatch gating, internal/fleet) and the
// prover's remote cache tier (internal/prover): trip open after N
// consecutive failures, refuse everything for a jittered reopen delay,
// then admit exactly one half-open probe whose outcome decides between
// closing and re-opening.
package breaker

import (
	"math/rand"
	"sync"
	"time"
)

// Breaker states, exposed by Snapshot and the callers' /statz payloads
// and breaker-state gauges (0 closed, 1 half-open, 2 open).
const (
	Closed   = "closed"
	HalfOpen = "half-open"
	Open     = "open"
)

// Breaker is one dependency's circuit breaker. It trips open after
// `threshold` consecutive failures; while open every Allow() is refused
// until a jittered reopen delay elapses, after which exactly one caller
// is admitted as the half-open probe. A probe success closes the
// breaker, a probe failure re-opens it for another jittered delay. The
// jitter (±50% around the configured reopen delay) decorrelates a
// fleet of clients hammering the same recovering dependency.
//
// All methods are safe for concurrent use.
type Breaker struct {
	threshold int
	reopen    time.Duration
	now       func() time.Time // test seam; time.Now outside tests

	mu       sync.Mutex
	state    string
	fails    int       // consecutive failures while closed
	until    time.Time // open: when the half-open probe unlocks
	probing  bool      // half-open: the single probe slot is taken
	tripped  int64     // cumulative close->open transitions
	reopened int64     // cumulative open->closed recoveries
}

// New returns a closed breaker that trips after threshold consecutive
// failures and offers its half-open probe a jittered reopen delay
// later.
func New(threshold int, reopen time.Duration) *Breaker {
	return &Breaker{
		threshold: threshold,
		reopen:    reopen,
		now:       time.Now,
		state:     Closed,
	}
}

// Allow reports whether a request may be sent. In the half-open state
// only the first caller gets true (the probe); everyone else is
// refused until the probe resolves via Success or Fail.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Before(b.until) {
			return false
		}
		b.state = HalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a request that reached the dependency and got a sane
// response. It resets the failure streak and closes a half-open
// breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen {
		b.reopened++
	}
	b.state = Closed
	b.fails = 0
	b.probing = false
}

// Fail records a request the dependency never served (connection
// refused, timeout, transport error). The breaker trips on the
// threshold'th consecutive failure, and a failed half-open probe
// re-opens immediately.
func (b *Breaker) Fail() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.trip()
	case Closed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
		}
	}
}

// trip opens the breaker for a jittered reopen delay. Caller holds mu.
func (b *Breaker) trip() {
	b.state = Open
	b.probing = false
	b.fails = 0
	b.tripped++
	// ±50% jitter around the configured delay, same shape as the
	// predabsd supervisor's retry backoff.
	d := b.reopen/2 + time.Duration(rand.Int63n(int64(b.reopen)))
	b.until = b.now().Add(d)
}

// Snapshot returns the current state name and transition counters.
func (b *Breaker) Snapshot() (state string, tripped, reopened int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.tripped, b.reopened
}
