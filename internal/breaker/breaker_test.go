package breaker

import (
	"testing"
	"time"
)

// fakeClock is an injectable, manually advanced time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker(threshold int, reopen time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := New(threshold, reopen)
	b.now = clk.now
	return b, clk
}

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	b, _ := testBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Fail()
	}
	if state, _, _ := b.Snapshot(); state != Closed {
		t.Fatalf("state after 2 failures = %q, want closed", state)
	}
	b.Fail() // third consecutive failure trips
	if state, tripped, _ := b.Snapshot(); state != Open || tripped != 1 {
		t.Fatalf("state after 3 failures = %q (tripped %d), want open/1", state, tripped)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := testBreaker(3, time.Second)
	b.Fail()
	b.Fail()
	b.Success()
	b.Fail()
	b.Fail()
	if state, _, _ := b.Snapshot(); state != Closed {
		t.Fatalf("interleaved successes must reset the streak; state = %q", state)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := testBreaker(1, time.Second)
	b.Fail()
	if b.Allow() {
		t.Fatal("open breaker admitted a request before the reopen delay")
	}
	// Jitter bounds the delay to [reopen/2, 3*reopen/2]; far past it the
	// breaker must offer the half-open probe.
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after the reopen delay")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Success()
	if state, _, reopened := b.Snapshot(); state != Closed || reopened != 1 {
		t.Fatalf("after probe success state = %q (reopened %d), want closed/1", state, reopened)
	}
	if !b.Allow() {
		t.Fatal("recovered breaker refused a request")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk := testBreaker(1, time.Second)
	b.Fail()
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe")
	}
	b.Fail()
	if state, tripped, _ := b.Snapshot(); state != Open || tripped != 2 {
		t.Fatalf("after probe failure state = %q (tripped %d), want open/2", state, tripped)
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a request immediately")
	}
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the second half-open probe")
	}
}
