package cparse

import (
	"fmt"

	"predabs/internal/cast"
	"predabs/internal/ctok"
)

// PredSection is one section of a predicate input file: a scope name (a
// procedure name, or "global") and its predicates, in source order, with
// the original source text preserved for boolean-variable naming.
type PredSection struct {
	Name  string
	Exprs []cast.Expr
	Texts []string
}

// ParsePredFile parses a predicate input file in the paper's style:
//
//	partition:
//	  curr == NULL, prev == NULL,
//	  curr->val > v, prev->val > v
//	global:
//	  locked == 1
//
// Each section is "name:" followed by comma-separated pure boolean C
// expressions. Predicates cannot contain ':', so section boundaries are
// unambiguous.
func ParsePredFile(src string) ([]PredSection, error) {
	toks, lexErrs := ctok.ScanAll(src)
	if len(lexErrs) > 0 {
		return nil, lexErrs[0]
	}
	p := &parser{toks: toks, typedefs: map[string]cast.Type{}}
	var out []PredSection
	for p.peek().Kind != ctok.EOF {
		name := p.expect(ctok.IDENT)
		p.expect(ctok.Colon)
		if len(p.errs) > 0 {
			return nil, p.errs[0]
		}
		sec := PredSection{Name: name.Text}
		for {
			start := p.pos
			e := p.expr()
			if len(p.errs) > 0 {
				return nil, p.errs[0]
			}
			sec.Exprs = append(sec.Exprs, e)
			sec.Texts = append(sec.Texts, tokensText(p.toks[start:p.pos]))
			if !p.accept(ctok.Comma) {
				break
			}
			// Allow a trailing comma before the next section or EOF.
			if p.peek().Kind == ctok.EOF {
				break
			}
			if p.peek().Kind == ctok.IDENT && p.peekN(1).Kind == ctok.Colon {
				break
			}
		}
		out = append(out, sec)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty predicate file")
	}
	return out, nil
}

// tokensText reconstructs readable source text from a token span.
func tokensText(toks []ctok.Token) string {
	s := ""
	for i, t := range toks {
		if i > 0 && needSpace(toks[i-1], t) {
			s += " "
		}
		s += t.Text
	}
	return s
}

func needSpace(prev, cur ctok.Token) bool {
	tight := func(k ctok.Kind) bool {
		switch k {
		case ctok.LParen, ctok.RParen, ctok.LBrack, ctok.RBrack,
			ctok.Arrow, ctok.Dot, ctok.Not, ctok.Amp, ctok.Star:
			return true
		}
		return false
	}
	if tight(prev.Kind) || tight(cur.Kind) {
		// Keep "->", ".", unary operators and brackets tight, except
		// binary uses of * and & are rare in predicates; favor tightness.
		if cur.Kind == ctok.Arrow || prev.Kind == ctok.Arrow ||
			cur.Kind == ctok.Dot || prev.Kind == ctok.Dot ||
			prev.Kind == ctok.Not || prev.Kind == ctok.Star || prev.Kind == ctok.Amp ||
			cur.Kind == ctok.LBrack || prev.Kind == ctok.LBrack || cur.Kind == ctok.RBrack ||
			prev.Kind == ctok.LParen || cur.Kind == ctok.RParen || cur.Kind == ctok.LParen {
			return false
		}
	}
	return true
}
