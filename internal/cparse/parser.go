// Package cparse implements a recursive-descent parser for MiniC, the C
// subset accepted by the predabs toolkit, including typedefs, struct
// definitions, pointers, arrays, and the full statement and expression
// grammar used by the C2bp paper's examples.
package cparse

import (
	"fmt"
	"strconv"
	"strings"

	"predabs/internal/cast"
	"predabs/internal/ctok"
)

// Error is a parse error with a source position.
type Error struct {
	Pos ctok.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// parser holds the token stream and typedef environment.
type parser struct {
	toks     []ctok.Token
	pos      int
	typedefs map[string]cast.Type
	errs     []error
}

// Parse parses a MiniC translation unit. It returns the program and the
// first error encountered, if any.
func Parse(src string) (*cast.Program, error) {
	toks, lexErrs := ctok.ScanAll(src)
	p := &parser{toks: toks, typedefs: map[string]cast.Type{}}
	for _, e := range lexErrs {
		p.errs = append(p.errs, e)
	}
	prog := p.program()
	if len(p.errs) > 0 {
		return prog, p.errs[0]
	}
	return prog, nil
}

// MustParse parses src and panics on error; intended for tests and
// embedded corpus programs that are known to be valid.
func MustParse(src string) *cast.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("cparse.MustParse: %v", err))
	}
	return prog
}

// ParseExpr parses a single MiniC expression (used for predicate input
// files, which per the paper are pure C boolean expressions).
func ParseExpr(src string) (cast.Expr, error) {
	toks, lexErrs := ctok.ScanAll(src)
	p := &parser{toks: toks, typedefs: map[string]cast.Type{}}
	if len(lexErrs) > 0 {
		return nil, lexErrs[0]
	}
	e := p.expr()
	if p.peek().Kind != ctok.EOF {
		p.errorf(p.peek().Pos, "unexpected %s after expression", p.peek())
	}
	if len(p.errs) > 0 {
		return nil, p.errs[0]
	}
	return e, nil
}

func (p *parser) errorf(pos ctok.Pos, format string, args ...any) {
	// Cap error accumulation so a badly broken input cannot loop forever.
	if len(p.errs) < 50 {
		p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (p *parser) peek() ctok.Token { return p.toks[p.pos] }

func (p *parser) peekN(n int) ctok.Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *parser) next() ctok.Token {
	t := p.toks[p.pos]
	if t.Kind != ctok.EOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k ctok.Kind) bool {
	if p.peek().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k ctok.Kind) ctok.Token {
	t := p.peek()
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		// Do not consume: the caller's recovery loop will skip.
		return ctok.Token{Kind: k, Pos: t.Pos}
	}
	return p.next()
}

// isTypeStart reports whether the upcoming tokens begin a type.
func (p *parser) isTypeStart() bool {
	switch p.peek().Kind {
	case ctok.KwInt, ctok.KwVoid, ctok.KwStruct:
		return true
	case ctok.IDENT:
		_, ok := p.typedefs[p.peek().Text]
		return ok
	}
	return false
}

// baseType parses int | void | struct NAME | typedef-name, including an
// inline struct definition (struct NAME { ... }), which it returns via def.
func (p *parser) baseType() (cast.Type, *cast.StructDef) {
	t := p.peek()
	switch t.Kind {
	case ctok.KwInt:
		p.next()
		return cast.IntType{}, nil
	case ctok.KwVoid:
		p.next()
		return cast.VoidType{}, nil
	case ctok.KwStruct:
		p.next()
		name := p.expect(ctok.IDENT).Text
		if p.peek().Kind == ctok.LBrace {
			def := p.structBody(name)
			return cast.StructType{Name: name}, def
		}
		return cast.StructType{Name: name}, nil
	case ctok.IDENT:
		if ty, ok := p.typedefs[t.Text]; ok {
			p.next()
			return ty, nil
		}
	}
	p.errorf(t.Pos, "expected type, found %s", t)
	p.next()
	return cast.IntType{}, nil
}

// structBody parses "{ field* }" for the named struct.
func (p *parser) structBody(name string) *cast.StructDef {
	p.expect(ctok.LBrace)
	def := &cast.StructDef{Name: name}
	for p.peek().Kind != ctok.RBrace && p.peek().Kind != ctok.EOF {
		base, _ := p.baseType()
		for {
			ft := base
			for p.accept(ctok.Star) {
				ft = cast.PointerType{Elem: ft}
			}
			fname := p.expect(ctok.IDENT).Text
			ft = p.arraySuffix(ft)
			def.Fields = append(def.Fields, cast.FieldDef{Name: fname, Type: ft})
			if !p.accept(ctok.Comma) {
				break
			}
		}
		p.expect(ctok.Semi)
	}
	p.expect(ctok.RBrace)
	return def
}

// arraySuffix parses zero or more [N] suffixes.
func (p *parser) arraySuffix(t cast.Type) cast.Type {
	for p.peek().Kind == ctok.LBrack {
		p.next()
		n := -1
		if p.peek().Kind == ctok.INT {
			v, _ := strconv.Atoi(p.next().Text)
			n = v
		}
		p.expect(ctok.RBrack)
		t = cast.ArrayType{Elem: t, Len: n}
	}
	return t
}

// program parses the translation unit.
func (p *parser) program() *cast.Program {
	prog := &cast.Program{}
	for p.peek().Kind != ctok.EOF {
		start := p.pos
		p.topDecl(prog)
		if p.pos == start {
			// Recovery: skip a token so we always make progress.
			p.next()
		}
	}
	return prog
}

func (p *parser) topDecl(prog *cast.Program) {
	if p.accept(ctok.KwTypedef) {
		base, def := p.baseType()
		if def != nil {
			prog.Structs = append(prog.Structs, def)
		}
		for {
			t := base
			for p.accept(ctok.Star) {
				t = cast.PointerType{Elem: t}
			}
			name := p.expect(ctok.IDENT).Text
			t = p.arraySuffix(t)
			p.typedefs[name] = t
			if !p.accept(ctok.Comma) {
				break
			}
		}
		p.expect(ctok.Semi)
		return
	}

	if !p.isTypeStart() {
		p.errorf(p.peek().Pos, "expected declaration, found %s", p.peek())
		return
	}
	base, def := p.baseType()
	if def != nil {
		prog.Structs = append(prog.Structs, def)
		if p.accept(ctok.Semi) { // bare "struct X { ... };"
			return
		}
	}
	t := base
	for p.accept(ctok.Star) {
		t = cast.PointerType{Elem: t}
	}
	nameTok := p.expect(ctok.IDENT)
	if p.peek().Kind == ctok.LParen {
		prog.Funcs = append(prog.Funcs, p.funcRest(t, nameTok))
		return
	}
	// Global variable declaration(s).
	t = p.arraySuffix(t)
	prog.Globals = append(prog.Globals, &cast.VarDecl{Name: nameTok.Text, Type: t, P: nameTok.Pos})
	for p.accept(ctok.Comma) {
		t2 := base
		for p.accept(ctok.Star) {
			t2 = cast.PointerType{Elem: t2}
		}
		n2 := p.expect(ctok.IDENT)
		t2 = p.arraySuffix(t2)
		prog.Globals = append(prog.Globals, &cast.VarDecl{Name: n2.Text, Type: t2, P: n2.Pos})
	}
	p.expect(ctok.Semi)
}

func (p *parser) funcRest(ret cast.Type, nameTok ctok.Token) *cast.FuncDef {
	f := &cast.FuncDef{Name: nameTok.Text, Ret: ret, P: nameTok.Pos}
	p.expect(ctok.LParen)
	if p.peek().Kind != ctok.RParen {
		if p.peek().Kind == ctok.KwVoid && p.peekN(1).Kind == ctok.RParen {
			p.next() // f(void)
		} else {
			for {
				base, _ := p.baseType()
				t := base
				for p.accept(ctok.Star) {
					t = cast.PointerType{Elem: t}
				}
				pn := p.expect(ctok.IDENT).Text
				t = p.arraySuffix(t)
				f.Params = append(f.Params, cast.Param{Name: pn, Type: t})
				if !p.accept(ctok.Comma) {
					break
				}
			}
		}
	}
	p.expect(ctok.RParen)
	f.Body = p.block()
	return f
}

func (p *parser) block() *cast.Block {
	lb := p.expect(ctok.LBrace)
	blk := &cast.Block{}
	blk.P = lb.Pos
	for p.peek().Kind != ctok.RBrace && p.peek().Kind != ctok.EOF {
		start := p.pos
		blk.Stmts = append(blk.Stmts, p.stmt())
		if p.pos == start {
			p.next()
		}
	}
	p.expect(ctok.RBrace)
	return blk
}

func (p *parser) stmt() cast.Stmt {
	t := p.peek()
	switch t.Kind {
	case ctok.LBrace:
		return p.block()
	case ctok.Semi:
		p.next()
		s := &cast.EmptyStmt{}
		s.P = t.Pos
		return s
	case ctok.KwIf:
		p.next()
		p.expect(ctok.LParen)
		cond := p.expr()
		p.expect(ctok.RParen)
		then := p.stmt()
		var els cast.Stmt
		if p.accept(ctok.KwElse) {
			els = p.stmt()
		}
		s := &cast.IfStmt{Cond: cond, Then: then, Else: els}
		s.P = t.Pos
		return s
	case ctok.KwWhile:
		p.next()
		p.expect(ctok.LParen)
		cond := p.expr()
		p.expect(ctok.RParen)
		body := p.stmt()
		s := &cast.WhileStmt{Cond: cond, Body: body}
		s.P = t.Pos
		return s
	case ctok.KwGoto:
		p.next()
		lbl := p.expect(ctok.IDENT).Text
		p.expect(ctok.Semi)
		s := &cast.GotoStmt{Label: lbl}
		s.P = t.Pos
		return s
	case ctok.KwReturn:
		p.next()
		var x cast.Expr
		if p.peek().Kind != ctok.Semi {
			x = p.expr()
		}
		p.expect(ctok.Semi)
		s := &cast.ReturnStmt{X: x}
		s.P = t.Pos
		return s
	case ctok.KwBreak:
		p.next()
		p.expect(ctok.Semi)
		s := &cast.BreakStmt{}
		s.P = t.Pos
		return s
	case ctok.KwContinue:
		p.next()
		p.expect(ctok.Semi)
		s := &cast.ContinueStmt{}
		s.P = t.Pos
		return s
	case ctok.KwAssert:
		p.next()
		p.expect(ctok.LParen)
		x := p.expr()
		p.expect(ctok.RParen)
		p.expect(ctok.Semi)
		s := &cast.AssertStmt{X: x}
		s.P = t.Pos
		return s
	case ctok.KwAssume:
		p.next()
		p.expect(ctok.LParen)
		x := p.expr()
		p.expect(ctok.RParen)
		p.expect(ctok.Semi)
		s := &cast.AssumeStmt{X: x}
		s.P = t.Pos
		return s
	}

	// Label: IDENT ':' stmt
	if t.Kind == ctok.IDENT && p.peekN(1).Kind == ctok.Colon {
		if _, isType := p.typedefs[t.Text]; !isType {
			p.next()
			p.next()
			s := &cast.LabeledStmt{Label: t.Text, Stmt: p.stmt()}
			s.P = t.Pos
			return s
		}
	}

	// Local declaration.
	if p.isTypeStart() {
		base, _ := p.baseType()
		var stmts []cast.Stmt
		for {
			ty := base
			for p.accept(ctok.Star) {
				ty = cast.PointerType{Elem: ty}
			}
			nameTok := p.expect(ctok.IDENT)
			ty = p.arraySuffix(ty)
			var init cast.Expr
			if p.accept(ctok.Assign) {
				init = p.expr()
			}
			d := &cast.DeclStmt{Name: nameTok.Text, Type: ty, Init: init}
			d.P = nameTok.Pos
			stmts = append(stmts, d)
			if !p.accept(ctok.Comma) {
				break
			}
		}
		p.expect(ctok.Semi)
		if len(stmts) == 1 {
			return stmts[0]
		}
		blk := &cast.Block{Stmts: stmts}
		blk.P = t.Pos
		return blk
	}

	// Assignment or expression (call) statement.
	lhs := p.expr()
	if p.accept(ctok.Assign) {
		rhs := p.expr()
		p.expect(ctok.Semi)
		s := &cast.AssignStmt{Lhs: lhs, Rhs: rhs}
		s.P = t.Pos
		return s
	}
	p.expect(ctok.Semi)
	s := &cast.ExprStmt{X: lhs}
	s.P = t.Pos
	return s
}

// Expression grammar, standard C precedence (no assignment expressions,
// no comma operator, no ternary — per the paper's simple form).

func (p *parser) expr() cast.Expr { return p.orExpr() }

func (p *parser) orExpr() cast.Expr {
	e := p.andExpr()
	for p.peek().Kind == ctok.OrOr {
		op := p.next()
		rhs := p.andExpr()
		b := &cast.Binary{Op: cast.LOr, X: e, Y: rhs}
		b.P = op.Pos
		e = b
	}
	return e
}

func (p *parser) andExpr() cast.Expr {
	e := p.eqExpr()
	for p.peek().Kind == ctok.AndAnd {
		op := p.next()
		rhs := p.eqExpr()
		b := &cast.Binary{Op: cast.LAnd, X: e, Y: rhs}
		b.P = op.Pos
		e = b
	}
	return e
}

func (p *parser) eqExpr() cast.Expr {
	e := p.relExpr()
	for {
		var op cast.BinOp
		switch p.peek().Kind {
		case ctok.EqEq:
			op = cast.Eq
		case ctok.NotEq:
			op = cast.Ne
		default:
			return e
		}
		t := p.next()
		rhs := p.relExpr()
		b := &cast.Binary{Op: op, X: e, Y: rhs}
		b.P = t.Pos
		e = b
	}
}

func (p *parser) relExpr() cast.Expr {
	e := p.addExpr()
	for {
		var op cast.BinOp
		switch p.peek().Kind {
		case ctok.Lt:
			op = cast.Lt
		case ctok.Le:
			op = cast.Le
		case ctok.Gt:
			op = cast.Gt
		case ctok.Ge:
			op = cast.Ge
		default:
			return e
		}
		t := p.next()
		rhs := p.addExpr()
		b := &cast.Binary{Op: op, X: e, Y: rhs}
		b.P = t.Pos
		e = b
	}
}

func (p *parser) addExpr() cast.Expr {
	e := p.mulExpr()
	for {
		var op cast.BinOp
		switch p.peek().Kind {
		case ctok.Plus:
			op = cast.Add
		case ctok.Minus:
			op = cast.Sub
		default:
			return e
		}
		t := p.next()
		rhs := p.mulExpr()
		b := &cast.Binary{Op: op, X: e, Y: rhs}
		b.P = t.Pos
		e = b
	}
}

func (p *parser) mulExpr() cast.Expr {
	e := p.unaryExpr()
	for {
		var op cast.BinOp
		switch p.peek().Kind {
		case ctok.Star:
			op = cast.Mul
		case ctok.Slash:
			op = cast.Div
		case ctok.Percent:
			op = cast.Mod
		default:
			return e
		}
		t := p.next()
		rhs := p.unaryExpr()
		b := &cast.Binary{Op: op, X: e, Y: rhs}
		b.P = t.Pos
		e = b
	}
}

func (p *parser) unaryExpr() cast.Expr {
	t := p.peek()
	var op cast.UnaryOp
	switch t.Kind {
	case ctok.Minus:
		op = cast.Neg
	case ctok.Not:
		op = cast.Not
	case ctok.Star:
		op = cast.Deref_
	case ctok.Amp:
		op = cast.AddrOf
	default:
		return p.postfixExpr()
	}
	p.next()
	x := p.unaryExpr()
	u := &cast.Unary{Op: op, X: x}
	u.P = t.Pos
	return u
}

func (p *parser) postfixExpr() cast.Expr {
	e := p.primaryExpr()
	for {
		t := p.peek()
		switch t.Kind {
		case ctok.Arrow:
			p.next()
			name := p.expect(ctok.IDENT).Text
			f := &cast.Field{X: e, Name: name, Arrow: true}
			f.P = t.Pos
			e = f
		case ctok.Dot:
			p.next()
			name := p.expect(ctok.IDENT).Text
			f := &cast.Field{X: e, Name: name, Arrow: false}
			f.P = t.Pos
			e = f
		case ctok.LBrack:
			p.next()
			idx := p.expr()
			p.expect(ctok.RBrack)
			ix := &cast.Index{X: e, I: idx}
			ix.P = t.Pos
			e = ix
		default:
			return e
		}
	}
}

func (p *parser) primaryExpr() cast.Expr {
	t := p.peek()
	switch t.Kind {
	case ctok.INT:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			p.errorf(t.Pos, "bad integer literal %q", t.Text)
		}
		e := &cast.IntLit{Value: v}
		e.P = t.Pos
		return e
	case ctok.KwNull:
		p.next()
		e := &cast.NullLit{}
		e.P = t.Pos
		return e
	case ctok.IDENT:
		p.next()
		if p.peek().Kind == ctok.LParen {
			p.next()
			var args []cast.Expr
			if p.peek().Kind != ctok.RParen {
				for {
					args = append(args, p.expr())
					if !p.accept(ctok.Comma) {
						break
					}
				}
			}
			p.expect(ctok.RParen)
			c := &cast.Call{Name: t.Text, Args: args}
			c.P = t.Pos
			return c
		}
		e := &cast.VarRef{Name: t.Text}
		e.P = t.Pos
		return e
	case ctok.LParen:
		p.next()
		e := p.expr()
		p.expect(ctok.RParen)
		return e
	}
	p.errorf(t.Pos, "expected expression, found %s", t)
	p.next()
	e := &cast.IntLit{Value: 0}
	e.P = t.Pos
	return e
}

// FormatTokens is a debugging aid that renders a token slice compactly.
func FormatTokens(toks []ctok.Token) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}
