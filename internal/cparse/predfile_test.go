package cparse

import (
	"strings"
	"testing"
)

func TestParsePredFileBasic(t *testing.T) {
	secs, err := ParsePredFile(`
partition:
  curr == NULL, prev == NULL,
  curr->val > v, prev->val > v
global:
  locked == 1
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 2 {
		t.Fatalf("sections: %d", len(secs))
	}
	if secs[0].Name != "partition" || len(secs[0].Exprs) != 4 {
		t.Fatalf("section 0: %s %d", secs[0].Name, len(secs[0].Exprs))
	}
	if secs[1].Name != "global" || len(secs[1].Exprs) != 1 {
		t.Fatalf("section 1: %s %d", secs[1].Name, len(secs[1].Exprs))
	}
	// Source texts preserved for boolean-variable naming.
	if secs[0].Texts[0] != "curr == NULL" {
		t.Errorf("text: %q", secs[0].Texts[0])
	}
	if secs[0].Texts[2] != "curr->val > v" {
		t.Errorf("text: %q", secs[0].Texts[2])
	}
}

func TestParsePredFileTrailingComma(t *testing.T) {
	secs, err := ParsePredFile("f:\n  x == 1,\n  y == 2,\ng:\n  z == 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 2 || len(secs[0].Exprs) != 2 || len(secs[1].Exprs) != 1 {
		t.Fatalf("sections: %+v", secs)
	}
}

func TestParsePredFileComplexExprs(t *testing.T) {
	secs, err := ParsePredFile(`
f:
  a[i] == 0, *p <= x + 1, s.field > 2, !(x < y), p != NULL && q != NULL
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(secs[0].Exprs) != 5 {
		t.Fatalf("exprs: %v", secs[0].Texts)
	}
	if secs[0].Texts[0] != "a[i] == 0" {
		t.Errorf("idx text: %q", secs[0].Texts[0])
	}
	if secs[0].Texts[1] != "*p <= x + 1" {
		t.Errorf("deref text: %q", secs[0].Texts[1])
	}
}

func TestParsePredFileErrors(t *testing.T) {
	bad := []string{
		"",
		"noColon x == 1",
		"f:\n  x == ,",
		"f:\n  x == 1 extra",
	}
	for _, src := range bad {
		if _, err := ParsePredFile(src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestParsePredFileCommentsAllowed(t *testing.T) {
	secs, err := ParsePredFile(`
// the partition predicates
f:
  x == 1, /* inline */ y == 2
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(secs[0].Exprs) != 2 {
		t.Fatalf("exprs: %v", secs[0].Texts)
	}
}

func TestTokensTextRoundTripsThroughParser(t *testing.T) {
	// The reconstructed text must reparse to the same expression shape.
	inputs := []string{
		"curr->val > v",
		"a[i + 1] == a[j]",
		"*p <= 0",
		"&x == p",
		"x % 2 == 0",
	}
	for _, in := range inputs {
		secs, err := ParsePredFile("f:\n  " + in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		text := secs[0].Texts[0]
		e1, err := ParseExpr(in)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := ParseExpr(text)
		if err != nil {
			t.Fatalf("reconstructed %q does not parse: %v", text, err)
		}
		if e1.String() != e2.String() {
			t.Errorf("%q -> %q changed shape: %s vs %s", in, text, e1, e2)
		}
	}
}

func TestParsePredFileSectionForSameNameTwice(t *testing.T) {
	// Two sections with the same name are allowed by the parser (merged by
	// the consumer); strings.Contains sanity only.
	secs, err := ParsePredFile("f:\n x == 1\nf:\n y == 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 2 {
		t.Fatalf("sections: %d", len(secs))
	}
	_ = strings.TrimSpace
}
