package cparse

import (
	"math/rand"
	"strings"
	"testing"
)

// The parser must never panic or hang, whatever bytes it is fed. Errors
// are expected; crashes are not.
func TestParserRobustAgainstGarbage(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	alphabet := "abxyz ()[]{};:,=<>!&|*+-/%.\n\t\"'@#123 int void struct if else while goto return typedef NULL assert assume"
	for trial := 0; trial < 2000; trial++ {
		n := r.Intn(120)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[r.Intn(len(alphabet))])
		}
		src := b.String()
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("parser panicked on %q: %v", src, rec)
				}
			}()
			Parse(src)         //nolint:errcheck // errors expected
			ParseExpr(src)     //nolint:errcheck
			ParsePredFile(src) //nolint:errcheck
		}()
	}
}

// Mutations of a valid program must not panic either (they exercise deeper
// parser states than pure garbage).
func TestParserRobustAgainstMutations(t *testing.T) {
	base := `
typedef struct cell { int val; struct cell* next; } *list;
list partition(list *l, int v) {
  list curr, prev;
  curr = *l;
  while (curr != NULL) {
    if (curr->val > v) { prev = curr; }
    curr = curr->next;
  }
  return prev;
}
`
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 1500; trial++ {
		b := []byte(base)
		for k := 0; k < 1+r.Intn(4); k++ {
			switch r.Intn(3) {
			case 0: // delete a byte
				i := r.Intn(len(b))
				b = append(b[:i], b[i+1:]...)
			case 1: // duplicate a byte
				i := r.Intn(len(b))
				b = append(b[:i+1], b[i:]...)
			case 2: // replace a byte
				b[r.Intn(len(b))] = "(){};=*&"[r.Intn(8)]
			}
		}
		src := string(b)
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("parser panicked on mutation: %v\n%s", rec, src)
				}
			}()
			Parse(src) //nolint:errcheck
		}()
	}
}
