package cparse

import (
	"strings"
	"testing"

	"predabs/internal/cast"
)

const partitionSrc = `
typedef struct cell {
  int val;
  struct cell* next;
} *list;

list partition(list *l, int v) {
  list curr, prev, newl, nextCurr;
  curr = *l;
  prev = NULL;
  newl = NULL;
  while (curr != NULL) {
    nextCurr = curr->next;
    if (curr->val > v) {
      if (prev != NULL) {
        prev->next = nextCurr;
      }
      if (curr == *l) {
        *l = nextCurr;
      }
      curr->next = newl;
L:    newl = curr;
    } else {
      prev = curr;
    }
    curr = nextCurr;
  }
  return newl;
}
`

func TestParsePartition(t *testing.T) {
	prog, err := Parse(partitionSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(prog.Structs) != 1 || prog.Structs[0].Name != "cell" {
		t.Fatalf("structs: %+v", prog.Structs)
	}
	if len(prog.Structs[0].Fields) != 2 {
		t.Fatalf("fields: %+v", prog.Structs[0].Fields)
	}
	f := prog.Func("partition")
	if f == nil {
		t.Fatal("no partition function")
	}
	if len(f.Params) != 2 {
		t.Fatalf("params: %+v", f.Params)
	}
	// Parameter l has type struct cell**: typedef list = struct cell*,
	// declared as list *l.
	pt, ok := f.Params[0].Type.(cast.PointerType)
	if !ok {
		t.Fatalf("param l type %s", f.Params[0].Type)
	}
	if _, ok := pt.Elem.(cast.PointerType); !ok {
		t.Fatalf("param l should be pointer-to-pointer, got %s", f.Params[0].Type)
	}
}

func TestParseRoundTrip(t *testing.T) {
	prog, err := Parse(partitionSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	printed := cast.Print(prog)
	prog2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\nsource:\n%s", err, printed)
	}
	printed2 := cast.Print(prog2)
	if printed != printed2 {
		t.Fatalf("print/parse not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
	}
}

func TestParseExprPrecedence(t *testing.T) {
	cases := []struct{ src, want string }{
		{"a + b * c", "a + (b * c)"},
		{"a * b + c", "(a * b) + c"},
		{"a < b == c", "(a < b) == c"},
		{"a && b || c && d", "(a && b) || (c && d)"},
		{"!a && b", "(!a) && b"},
		{"-a + b", "(-a) + b"},
		{"*p + 1", "(*p) + 1"},
		{"a == b + 1", "a == (b + 1)"},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		got := e.String()
		norm := func(s string) string {
			s = strings.ReplaceAll(s, "(", "")
			return strings.ReplaceAll(s, ")", "")
		}
		// Compare shapes by reparsing the want string.
		we, err := ParseExpr(c.want)
		if err != nil {
			t.Fatalf("want %q: %v", c.want, err)
		}
		if norm(got) != norm(we.String()) || got != we.String() {
			t.Errorf("%q: got %s, want %s", c.src, got, we)
		}
	}
}

func TestParsePostfixChain(t *testing.T) {
	e, err := ParseExpr("p->next->val")
	if err != nil {
		t.Fatal(err)
	}
	outer, ok := e.(*cast.Field)
	if !ok || outer.Name != "val" || !outer.Arrow {
		t.Fatalf("outer: %#v", e)
	}
	inner, ok := outer.X.(*cast.Field)
	if !ok || inner.Name != "next" {
		t.Fatalf("inner: %#v", outer.X)
	}
}

func TestParseAddressOf(t *testing.T) {
	e, err := ParseExpr("&x == p")
	if err != nil {
		t.Fatal(err)
	}
	b, ok := e.(*cast.Binary)
	if !ok || b.Op != cast.Eq {
		t.Fatalf("top: %#v", e)
	}
	u, ok := b.X.(*cast.Unary)
	if !ok || u.Op != cast.AddrOf {
		t.Fatalf("lhs: %#v", b.X)
	}
}

func TestParseStatements(t *testing.T) {
	src := `
int g;
void f(int x) {
  int i;
  i = 0;
  while (i < 10) {
    if (i == 5) { break; } else { continue; }
  }
  goto done;
done:
  assert(i <= 10);
  assume(i >= 0);
  return;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if prog.Global("g") == nil {
		t.Error("global g missing")
	}
	f := prog.Func("f")
	if f == nil {
		t.Fatal("f missing")
	}
	// decl, assign, while, goto, labeled assert, assume, return.
	if len(f.Body.Stmts) != 7 {
		t.Fatalf("got %d statements, want 7", len(f.Body.Stmts))
	}
}

func TestParseVoidParamList(t *testing.T) {
	prog, err := Parse("int f(void) { return 1; }")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(prog.Func("f").Params); got != 0 {
		t.Fatalf("got %d params, want 0", got)
	}
}

func TestParseMultiDecl(t *testing.T) {
	prog, err := Parse("int a, b; void f(int x) { int c, d; c = x; d = c; }")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Globals) != 2 {
		t.Fatalf("globals: %v", prog.Globals)
	}
}

func TestParseArrayDecl(t *testing.T) {
	prog, err := Parse("void f(int a[], int n) { int b[10]; b[0] = a[n]; }")
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("f")
	if _, ok := f.Params[0].Type.(cast.ArrayType); !ok {
		t.Fatalf("param a: %s", f.Params[0].Type)
	}
}

func TestParseCallStatement(t *testing.T) {
	prog, err := Parse(`
void g(int x) { }
void f(void) { g(1 + 2); }
`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("f")
	es, ok := f.Body.Stmts[0].(*cast.ExprStmt)
	if !ok {
		t.Fatalf("stmt: %#v", f.Body.Stmts[0])
	}
	if _, ok := es.X.(*cast.Call); !ok {
		t.Fatalf("expr: %#v", es.X)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"int f( { }",
		"void f(void) { x = ; }",
		"void f(void) { if x { } }",
		"banana",
		"void f(void) { 1 = 2; } extra junk here",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestParseDanglingElse(t *testing.T) {
	src := `void f(int a, int b, int x) { if (a) if (b) x = 1; else x = 2; }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	outer := prog.Func("f").Body.Stmts[0].(*cast.IfStmt)
	if outer.Else != nil {
		t.Fatal("else bound to outer if; should bind to inner")
	}
	inner := outer.Then.(*cast.IfStmt)
	if inner.Else == nil {
		t.Fatal("inner if lost its else")
	}
}

func TestParseTypedefPlain(t *testing.T) {
	prog, err := Parse("typedef int myint; myint g; void f(myint x) { g = x; }")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := prog.Global("g").Type.(cast.IntType); !ok {
		t.Fatalf("g type: %s", prog.Global("g").Type)
	}
}

func TestParseLabelNotTypedefConfusion(t *testing.T) {
	// A label whose name collides with nothing should parse as a label.
	prog, err := Parse("void f(int x) { loop: x = x - 1; if (x > 0) goto loop; }")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := prog.Func("f").Body.Stmts[0].(*cast.LabeledStmt); !ok {
		t.Fatalf("stmt0: %#v", prog.Func("f").Body.Stmts[0])
	}
}
