package bp

import (
	"strings"
	"testing"
)

const sampleSrc = `
decl g1, {curr==NULL};

void partition(p1) begin
  decl l1, {curr->val>v};
  enforce !(g1 & l1);
 L:
  l1, {curr->val>v} := choose(p1, !p1), *;
  if (*) then
    assume(l1);
    g1 := true;
  else
    assume(!l1);
    skip;
  fi
  while ({curr==NULL}) do
    {curr==NULL} := choose(false, g1);
  od
  assert(!g1 | l1);
  goto L, M;
 M:
  return;
end

bool<2> both(a, b) begin
  return a & b, a | b;
end

bool single(x) begin
  decl t1, t2;
  t1, t2 := both(x, !x);
  return t1 => t2;
end
`

func TestParseSample(t *testing.T) {
	prog, err := Parse(sampleSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(prog.Globals) != 2 {
		t.Fatalf("globals: %v", prog.Globals)
	}
	if prog.Globals[1] != "curr==NULL" {
		t.Fatalf("braced name: %q", prog.Globals[1])
	}
	pr := prog.Proc("partition")
	if pr == nil {
		t.Fatal("partition missing")
	}
	if len(pr.Locals) != 2 || pr.Locals[1] != "curr->val>v" {
		t.Fatalf("locals: %v", pr.Locals)
	}
	if pr.Enforce == nil {
		t.Fatal("enforce missing")
	}
	if prog.Proc("both").NRet != 2 {
		t.Fatal("both should return 2 values")
	}
}

func TestPrintParseFixpoint(t *testing.T) {
	prog, err := Parse(sampleSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p1 := Print(prog)
	prog2, err := Parse(p1)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, p1)
	}
	p2 := Print(prog2)
	if p1 != p2 {
		t.Fatalf("print/parse not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", p1, p2)
	}
}

func TestResolveErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"void f() begin x := true; return; end", "undeclared"},
		{"void f() begin goto nowhere; return; end", "unknown label"},
		{"void f() begin decl a; a := true, false; return; end", "targets"},
		{"void f() begin g(true); return; end", "unknown procedure"},
		{"bool f(a) begin return a; end void h() begin f(true, false); return; end", "takes 1 args"},
		{"bool f(a) begin return; end", "return with 0 values"},
		{"decl g; decl g; void f() begin return; end", "duplicate global"},
		{"void f(a) begin decl a; return; end", "duplicate variable"},
		{"void f() begin L: skip; L: skip; return; end", "duplicate label"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: got %v, want error containing %q", c.src, err, c.want)
		}
	}
}

func TestIfDesugar(t *testing.T) {
	prog, err := Parse(`
void f(a) begin
  decl x;
  if (a) then x := true; else x := false; fi
  return;
end`)
	if err != nil {
		t.Fatal(err)
	}
	pr := prog.Proc("f")
	// goto Lt,Lf / assume(a) / assign / goto Le / assume(!a) / assign /
	// skip / return
	if pr.Stmts[0].Kind != Goto || len(pr.Stmts[0].Targets) != 2 {
		t.Fatalf("stmt0: %s", StmtString(pr.Stmts[0]))
	}
	if pr.Stmts[1].Kind != Assume {
		t.Fatalf("stmt1: %s", StmtString(pr.Stmts[1]))
	}
}

func TestNondeterministicIf(t *testing.T) {
	prog, err := Parse(`
void f() begin
  decl x;
  if (*) then x := true; else x := false; fi
  return;
end`)
	if err != nil {
		t.Fatal(err)
	}
	pr := prog.Proc("f")
	// Both assumes must be assume(true).
	count := 0
	for _, s := range pr.Stmts {
		if s.Kind == Assume {
			if c, ok := s.Cond.(Const); !ok || !c.Val {
				t.Errorf("nondet if: assume should be true, got %s", s.Cond)
			}
			count++
		}
	}
	if count != 2 {
		t.Fatalf("expected 2 assumes, got %d", count)
	}
}

func TestExprPrecedence(t *testing.T) {
	prog, err := Parse(`
void f(a, b, c) begin
  assume(a & b | c);
  assume(!a | b => c <=> a);
  return;
end`)
	if err != nil {
		t.Fatal(err)
	}
	s0 := prog.Proc("f").Stmts[0].Cond.String()
	if s0 != "(a & b) | c" {
		t.Errorf("precedence: %s", s0)
	}
	s1 := prog.Proc("f").Stmts[1].Cond.String()
	if s1 != "((!a | b) => c) <=> a" {
		t.Errorf("precedence: %s", s1)
	}
}

func TestMkSimplifications(t *testing.T) {
	a := Ref{Name: "a"}
	if MkAnd(Const{true}, a).String() != "a" {
		t.Error("true & a")
	}
	if MkAnd(Const{false}, a).String() != "false" {
		t.Error("false & a")
	}
	if MkOr(Const{false}, a).String() != "a" {
		t.Error("false | a")
	}
	if MkNot(MkNot(a)).String() != "a" {
		t.Error("!!a")
	}
}

func TestVoidImplicitReturn(t *testing.T) {
	prog, err := Parse("void f() begin skip; end")
	if err != nil {
		t.Fatal(err)
	}
	pr := prog.Proc("f")
	if pr.Stmts[len(pr.Stmts)-1].Kind != Return {
		t.Fatal("implicit return missing")
	}
}

func TestBoolProcNeedsReturn(t *testing.T) {
	_, err := Parse("bool f() begin skip; end")
	if err == nil {
		t.Fatal("bool procedure without return should fail")
	}
}
