package bp

import (
	"math/rand"
	"strings"
	"testing"
)

// The boolean-program parser must never panic on arbitrary input.
func TestBPParserRobust(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	alphabet := "ab{};:=<>!&|*,() decl begin end void bool goto skip assume assert return if then else fi while do od choose true false 123 $"
	for trial := 0; trial < 2000; trial++ {
		n := r.Intn(100)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[r.Intn(len(alphabet))])
		}
		src := b.String()
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("bp parser panicked on %q: %v", src, rec)
				}
			}()
			Parse(src)     //nolint:errcheck
			ParseExpr(src) //nolint:errcheck
		}()
	}
}

func TestBPParserRobustAgainstMutations(t *testing.T) {
	base := `
decl g;
bool f(a) begin
  decl t;
  t := choose(a, !a);
  if (t) then g := true; else g := false; fi
  while (*) do t := !t; od
  return t & g;
end
`
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 1500; trial++ {
		b := []byte(base)
		for k := 0; k < 1+r.Intn(4); k++ {
			switch r.Intn(3) {
			case 0:
				i := r.Intn(len(b))
				b = append(b[:i], b[i+1:]...)
			case 1:
				i := r.Intn(len(b))
				b = append(b[:i+1], b[i:]...)
			case 2:
				b[r.Intn(len(b))] = "(){};:=*&"[r.Intn(9)]
			}
		}
		src := string(b)
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("bp parser panicked on mutation: %v\n%s", rec, src)
				}
			}()
			Parse(src) //nolint:errcheck
		}()
	}
}
