package bp

import (
	"fmt"
	"strings"
)

// Print renders the program in the boolean-program surface syntax. The
// output reparses to an equivalent program (print→parse→print is a
// fixpoint, which tests verify).
func Print(p *Program) string {
	var b strings.Builder
	if len(p.Globals) > 0 {
		fmt.Fprintf(&b, "decl %s;\n\n", strings.Join(refs(p.Globals), ", "))
	}
	for _, pr := range p.Procs {
		printProc(&b, pr)
		b.WriteString("\n")
	}
	return b.String()
}

func printProc(b *strings.Builder, pr *Proc) {
	ret := "void"
	switch {
	case pr.NRet == 1:
		ret = "bool"
	case pr.NRet > 1:
		ret = fmt.Sprintf("bool<%d>", pr.NRet)
	}
	fmt.Fprintf(b, "%s %s(%s) begin\n", ret, pr.Name, strings.Join(refs(pr.Params), ", "))
	if len(pr.Locals) > 0 {
		fmt.Fprintf(b, "  decl %s;\n", strings.Join(refs(pr.Locals), ", "))
	}
	if pr.Enforce != nil {
		fmt.Fprintf(b, "  enforce %s;\n", pr.Enforce)
	}
	for _, s := range pr.Stmts {
		for _, l := range s.Labels {
			fmt.Fprintf(b, " %s:\n", Ref{Name: l})
		}
		line := "  " + StmtString(s)
		if s.Comment != "" {
			line += " // " + s.Comment
		}
		b.WriteString(line + "\n")
	}
	b.WriteString("end\n")
}
