package bp

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser for the boolean-program surface syntax, accepting both the flat
// label/goto form the printer emits and structured if/then/else/fi and
// while/do/od sugar (desugared to assumes and gotos at parse time, per
// paper Section 4.4).

type bpToken struct {
	kind string // "id", "num", punctuation/keyword spelling, "eof"
	text string
	line int
}

func lexBP(src string) ([]bpToken, error) {
	var toks []bpToken
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '{':
			j := i + 1
			for j < len(src) && src[j] != '}' {
				if src[j] == '\n' {
					line++
				}
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("line %d: unterminated {name}", line)
			}
			toks = append(toks, bpToken{"id", src[i+1 : j], line})
			i = j + 1
		case c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z'):
			j := i
			for j < len(src) && (src[j] == '_' || ('a' <= src[j] && src[j] <= 'z') ||
				('A' <= src[j] && src[j] <= 'Z') || ('0' <= src[j] && src[j] <= '9')) {
				j++
			}
			word := src[i:j]
			switch word {
			case "decl", "begin", "end", "enforce", "skip", "goto", "assume",
				"assert", "return", "if", "then", "else", "fi", "while", "do",
				"od", "choose", "true", "false", "bool", "void":
				toks = append(toks, bpToken{word, word, line})
			default:
				toks = append(toks, bpToken{"id", word, line})
			}
			i = j
		case '0' <= c && c <= '9':
			j := i
			for j < len(src) && '0' <= src[j] && src[j] <= '9' {
				j++
			}
			toks = append(toks, bpToken{"num", src[i:j], line})
			i = j
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			three := ""
			if i+2 < len(src) {
				three = src[i : i+3]
			}
			switch {
			case three == "<=>":
				toks = append(toks, bpToken{"<=>", three, line})
				i += 3
			case two == ":=" || two == "=>":
				toks = append(toks, bpToken{two, two, line})
				i += 2
			case strings.ContainsRune("();,:!&|*<>", rune(c)):
				toks = append(toks, bpToken{string(c), string(c), line})
				i++
			default:
				return nil, fmt.Errorf("line %d: unexpected character %q", line, c)
			}
		}
	}
	toks = append(toks, bpToken{"eof", "", line})
	return toks, nil
}

type bpParser struct {
	toks   []bpToken
	pos    int
	labelN int
}

// Parse parses boolean-program source text and resolves it.
func Parse(src string) (*Program, error) {
	toks, err := lexBP(src)
	if err != nil {
		return nil, err
	}
	p := &bpParser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if err := prog.Resolve(); err != nil {
		return nil, err
	}
	return prog, nil
}

// ParseExpr parses a single boolean expression (no scope checking; for
// querying invariants by expression).
func ParseExpr(src string) (Expr, error) {
	toks, err := lexBP(src)
	if err != nil {
		return nil, err
	}
	p := &bpParser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != "eof" {
		return nil, fmt.Errorf("line %d: unexpected %q after expression", p.peek().line, p.peek().text)
	}
	return e, nil
}

// MustParse panics on error (tests and embedded fixtures).
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic("bp.MustParse: " + err.Error())
	}
	return prog
}

func (p *bpParser) peek() bpToken { return p.toks[p.pos] }

func (p *bpParser) next() bpToken {
	t := p.toks[p.pos]
	if t.kind != "eof" {
		p.pos++
	}
	return t
}

func (p *bpParser) expect(kind string) (bpToken, error) {
	t := p.peek()
	if t.kind != kind {
		return t, fmt.Errorf("line %d: expected %q, found %q", t.line, kind, t.text)
	}
	return p.next(), nil
}

func (p *bpParser) accept(kind string) bool {
	if p.peek().kind == kind {
		p.next()
		return true
	}
	return false
}

func (p *bpParser) program() (*Program, error) {
	prog := &Program{}
	for p.accept("decl") {
		names, err := p.idList()
		if err != nil {
			return nil, err
		}
		prog.Globals = append(prog.Globals, names...)
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	for p.peek().kind != "eof" {
		pr, err := p.proc()
		if err != nil {
			return nil, err
		}
		prog.Procs = append(prog.Procs, pr)
	}
	return prog, nil
}

func (p *bpParser) idList() ([]string, error) {
	var out []string
	for {
		t, err := p.expect("id")
		if err != nil {
			return nil, err
		}
		out = append(out, t.text)
		if !p.accept(",") {
			return out, nil
		}
	}
}

func (p *bpParser) proc() (*Proc, error) {
	pr := &Proc{}
	switch p.peek().kind {
	case "void":
		p.next()
	case "bool":
		p.next()
		pr.NRet = 1
		if p.accept("<") {
			t, err := p.expect("num")
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(t.text)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("line %d: bad return arity %q", t.line, t.text)
			}
			pr.NRet = n
			if _, err := p.expect(">"); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("line %d: expected procedure type, found %q", p.peek().line, p.peek().text)
	}
	name, err := p.expect("id")
	if err != nil {
		return nil, err
	}
	pr.Name = name.text
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	if p.peek().kind != ")" {
		params, err := p.idList()
		if err != nil {
			return nil, err
		}
		pr.Params = params
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	if _, err := p.expect("begin"); err != nil {
		return nil, err
	}
	for p.accept("decl") {
		names, err := p.idList()
		if err != nil {
			return nil, err
		}
		pr.Locals = append(pr.Locals, names...)
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if p.accept("enforce") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		pr.Enforce = e
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	stmts, err := p.stmtSeq(map[string]bool{"end": true})
	if err != nil {
		return nil, err
	}
	pr.Stmts = stmts
	if _, err := p.expect("end"); err != nil {
		return nil, err
	}
	// Implicit trailing return for void procedures that fall off the end.
	if len(pr.Stmts) == 0 || pr.Stmts[len(pr.Stmts)-1].Kind != Return {
		if pr.NRet == 0 {
			pr.Stmts = append(pr.Stmts, &Stmt{Kind: Return})
		}
	}
	return pr, nil
}

func (p *bpParser) freshLabel() string {
	p.labelN++
	return fmt.Sprintf("__bp%d", p.labelN)
}

// stmtSeq parses statements until one of the stop keywords.
func (p *bpParser) stmtSeq(stop map[string]bool) ([]*Stmt, error) {
	var out []*Stmt
	for !stop[p.peek().kind] && p.peek().kind != "eof" {
		ss, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, ss...)
	}
	return out, nil
}

// stmt parses one statement, possibly desugaring into several.
func (p *bpParser) stmt() ([]*Stmt, error) {
	var labels []string
	for p.peek().kind == "id" && p.toks[p.pos+1].kind == ":" {
		labels = append(labels, p.next().text)
		p.next() // ':'
	}
	attach := func(ss []*Stmt, err error) ([]*Stmt, error) {
		if err != nil {
			return nil, err
		}
		if len(ss) > 0 {
			ss[0].Labels = append(labels, ss[0].Labels...)
		}
		return ss, nil
	}

	t := p.peek()
	switch t.kind {
	case "skip":
		p.next()
		_, err := p.expect(";")
		return attach([]*Stmt{{Kind: Skip}}, err)
	case "goto":
		p.next()
		targets, err := p.idList()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(";")
		return attach([]*Stmt{{Kind: Goto, Targets: targets}}, err)
	case "assume", "assert":
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		kind := Assume
		if t.kind == "assert" {
			kind = Assert
		}
		return attach([]*Stmt{{Kind: kind, Cond: e}}, nil)
	case "return":
		p.next()
		var vals []Expr
		if p.peek().kind != ";" {
			var err error
			vals, err = p.exprList()
			if err != nil {
				return nil, err
			}
		}
		_, err := p.expect(";")
		return attach([]*Stmt{{Kind: Return, RetVals: vals}}, err)
	case "if":
		return attach(p.ifStmt())
	case "while":
		return attach(p.whileStmt())
	case "id":
		// Call without results, or (parallel) assignment / call with
		// results.
		if p.toks[p.pos+1].kind == "(" {
			callee := p.next().text
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			_, err = p.expect(";")
			return attach([]*Stmt{{Kind: Call, Callee: callee, Args: args}}, err)
		}
		lhs, err := p.idList()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(":="); err != nil {
			return nil, err
		}
		// Call on the right?
		if p.peek().kind == "id" && p.toks[p.pos+1].kind == "(" {
			callee := p.next().text
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			_, err = p.expect(";")
			return attach([]*Stmt{{Kind: Call, Callee: callee, Args: args, CallLhs: lhs}}, err)
		}
		rhs, err := p.exprList()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(";")
		return attach([]*Stmt{{Kind: Assign, Lhs: lhs, Rhs: rhs}}, err)
	}
	return nil, fmt.Errorf("line %d: unexpected %q", t.line, t.text)
}

func (p *bpParser) callArgs() ([]Expr, error) {
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	var args []Expr
	if p.peek().kind != ")" {
		var err error
		args, err = p.exprList()
		if err != nil {
			return nil, err
		}
	}
	_, err := p.expect(")")
	return args, err
}

// ifStmt desugars:
//
//	if (e) then S1 else S2 fi
//
// into
//
//	goto Lt, Lf;
//	Lt: assume(e); S1; goto Le;
//	Lf: assume(!e); S2;
//	Le: skip;
func (p *bpParser) ifStmt() ([]*Stmt, error) {
	p.next() // if
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	if _, err := p.expect("then"); err != nil {
		return nil, err
	}
	thenS, err := p.stmtSeq(map[string]bool{"else": true, "fi": true})
	if err != nil {
		return nil, err
	}
	var elseS []*Stmt
	if p.accept("else") {
		elseS, err = p.stmtSeq(map[string]bool{"fi": true})
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect("fi"); err != nil {
		return nil, err
	}
	lt, lf, le := p.freshLabel(), p.freshLabel(), p.freshLabel()
	out := []*Stmt{{Kind: Goto, Targets: []string{lt, lf}}}
	out = append(out, &Stmt{Kind: Assume, Cond: assumeCond(cond, true), Labels: []string{lt}})
	out = append(out, thenS...)
	out = append(out, &Stmt{Kind: Goto, Targets: []string{le}})
	out = append(out, &Stmt{Kind: Assume, Cond: assumeCond(cond, false), Labels: []string{lf}})
	out = append(out, elseS...)
	out = append(out, &Stmt{Kind: Skip, Labels: []string{le}})
	return out, nil
}

// whileStmt desugars while (e) do S od similarly.
func (p *bpParser) whileStmt() ([]*Stmt, error) {
	p.next() // while
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	if _, err := p.expect("do"); err != nil {
		return nil, err
	}
	body, err := p.stmtSeq(map[string]bool{"od": true})
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("od"); err != nil {
		return nil, err
	}
	lh, lb, le := p.freshLabel(), p.freshLabel(), p.freshLabel()
	out := []*Stmt{{Kind: Goto, Targets: []string{lb, le}, Labels: []string{lh}}}
	out = append(out, &Stmt{Kind: Assume, Cond: assumeCond(cond, true), Labels: []string{lb}})
	out = append(out, body...)
	out = append(out, &Stmt{Kind: Goto, Targets: []string{lh}})
	out = append(out, &Stmt{Kind: Assume, Cond: assumeCond(cond, false), Labels: []string{le}})
	return out, nil
}

// assumeCond handles the nondeterministic condition *: assume(true) on
// both branches.
func assumeCond(cond Expr, branch bool) Expr {
	if _, ok := cond.(Unknown); ok {
		return Const{true}
	}
	if branch {
		return cond
	}
	return MkNot(cond)
}

func (p *bpParser) exprList() ([]Expr, error) {
	var out []Expr
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if !p.accept(",") {
			return out, nil
		}
	}
}

// Expression precedence: <=> lowest, then =>, |, &, !, primary.
func (p *bpParser) expr() (Expr, error) { return p.iffExpr() }

func (p *bpParser) iffExpr() (Expr, error) {
	e, err := p.impExpr()
	if err != nil {
		return nil, err
	}
	for p.accept("<=>") {
		r, err := p.impExpr()
		if err != nil {
			return nil, err
		}
		e = Bin{Op: Iff, X: e, Y: r}
	}
	return e, nil
}

func (p *bpParser) impExpr() (Expr, error) {
	e, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if p.accept("=>") {
		r, err := p.impExpr() // right associative
		if err != nil {
			return nil, err
		}
		return Bin{Op: Implies, X: e, Y: r}, nil
	}
	return e, nil
}

func (p *bpParser) orExpr() (Expr, error) {
	e, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept("|") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		e = Bin{Op: Or, X: e, Y: r}
	}
	return e, nil
}

func (p *bpParser) andExpr() (Expr, error) {
	e, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.accept("&") {
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		e = Bin{Op: And, X: e, Y: r}
	}
	return e, nil
}

func (p *bpParser) unary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case "!":
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Not{X: x}, nil
	case "*":
		p.next()
		return Unknown{}, nil
	case "true":
		p.next()
		return Const{true}, nil
	case "false":
		p.next()
		return Const{false}, nil
	case "choose":
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		pos, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(","); err != nil {
			return nil, err
		}
		neg, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return Choose{Pos: pos, Neg: neg}, nil
	case "id":
		p.next()
		return Ref{Name: t.text}, nil
	case "(":
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(")")
		return e, err
	}
	return nil, fmt.Errorf("line %d: expected expression, found %q", t.line, t.text)
}
