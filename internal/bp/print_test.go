package bp

import (
	"strings"
	"testing"
)

func TestBracedNamePrinting(t *testing.T) {
	cases := []struct{ name, want string }{
		{"simple", "simple"},
		{"curr == NULL", "{curr == NULL}"},
		{"*p <= 0", "{*p <= 0}"},
		{"t$1", "{t$1}"},
		{"0starts", "{0starts}"},
		{"true", "{true}"}, // keyword collision must be braced
		{"choose", "{choose}"},
		{"a_b_c9", "a_b_c9"},
		{"", "{}"},
	}
	for _, c := range cases {
		got := Ref{Name: c.name}.String()
		if got != c.want {
			t.Errorf("%q: got %q, want %q", c.name, got, c.want)
		}
	}
}

func TestBracedNamesRoundTrip(t *testing.T) {
	src := `
decl {g one}, {true};

void f({a b}) begin
  decl {x$}, plain;
 {weird label}:
  {x$} := {a b} & {g one};
  plain := !{true};
  goto {weird label}, done;
 done:
  return;
end
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p1 := Print(prog)
	prog2, err := Parse(p1)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, p1)
	}
	if p2 := Print(prog2); p1 != p2 {
		t.Fatalf("fixpoint broken:\n%s\nvs\n%s", p1, p2)
	}
}

func TestStmtStringForms(t *testing.T) {
	prog := MustParse(`
decl g;
bool<2> pair(x) begin
  return x, !x;
end
void f(a) begin
  decl t1, t2;
  skip;
  t1, t2 := pair(a | g);
  pair(true);
  assume(t1 => t2);
  assert(t1 <=> !t2);
  goto L;
 L:
  g := choose(t1, t2);
  return;
end
`)
	f := prog.Proc("f")
	wants := []string{
		"skip;",
		"t1, t2 := pair(a | g);",
		"pair(true);",
		"assume(t1 => t2);",
		"assert(t1 <=> !t2);",
		"goto L;",
		"g := choose(t1, t2);",
		"return;",
	}
	if len(f.Stmts) != len(wants) {
		t.Fatalf("stmt count %d, want %d", len(f.Stmts), len(wants))
	}
	for i, w := range wants {
		if got := StmtString(f.Stmts[i]); got != w {
			t.Errorf("stmt %d: got %q, want %q", i, got, w)
		}
	}
}

func TestCommentsInPrintOutput(t *testing.T) {
	prog := MustParse("void f() begin skip; return; end")
	prog.Procs[0].Stmts[0].Comment = "x = 1;"
	out := Print(prog)
	if !strings.Contains(out, "skip; // x = 1;") {
		t.Errorf("comment missing:\n%s", out)
	}
	// Comments must not break reparsing.
	if _, err := Parse(out); err != nil {
		t.Fatalf("commented output does not reparse: %v", err)
	}
}

func TestParseExprStandalone(t *testing.T) {
	e, err := ParseExpr("!{curr == NULL} & ({a} | b)")
	if err != nil {
		t.Fatal(err)
	}
	// {a} normalizes to plain a (braces only when needed).
	want := "!{curr == NULL} & (a | b)"
	if e.String() != want {
		t.Errorf("got %q, want %q", e.String(), want)
	}
	if _, err := ParseExpr("a &"); err == nil {
		t.Error("truncated expression should fail")
	}
	if _, err := ParseExpr("a b"); err == nil {
		t.Error("junk after expression should fail")
	}
}
