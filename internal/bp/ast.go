// Package bp defines boolean programs — the target language of the C2bp
// abstraction and the input language of the Bebop model checker. A boolean
// program is "essentially a C program in which the only type available is
// boolean" (paper Section 1), with global variables, procedures with
// call-by-value parameters and multiple return values, parallel
// assignment, nondeterministic choice (*), assume/assert filters, the
// choose three-valued helper, and per-procedure enforce invariants.
package bp

import (
	"fmt"
	"strings"
)

// Expr is a boolean expression.
type Expr interface {
	expr()
	String() string
}

// Const is true or false.
type Const struct{ Val bool }

// Ref names a boolean variable. Names may be arbitrary strings (the
// printer quotes non-identifier names in {braces}, as in the paper).
type Ref struct{ Name string }

// Unknown is the nondeterministic control expression "*".
type Unknown struct{}

// Not is logical negation.
type Not struct{ X Expr }

// Bin is a binary boolean operation.
type Bin struct {
	Op   BinOp
	X, Y Expr
}

// BinOp enumerates boolean connectives.
type BinOp int

// Boolean connectives.
const (
	And BinOp = iota
	Or
	Implies
	Iff
)

func (op BinOp) String() string {
	switch op {
	case And:
		return "&"
	case Or:
		return "|"
	case Implies:
		return "=>"
	case Iff:
		return "<=>"
	}
	return "?"
}

// Choose is the three-valued helper from the paper:
// choose(pos, neg) = true if pos, false if neg, nondeterministic otherwise.
// (pos and neg are never simultaneously true in well-formed programs.)
type Choose struct{ Pos, Neg Expr }

func (Const) expr()   {}
func (Ref) expr()     {}
func (Unknown) expr() {}
func (Not) expr()     {}
func (Bin) expr()     {}
func (Choose) expr()  {}

func (e Const) String() string {
	if e.Val {
		return "true"
	}
	return "false"
}

// isPlainIdent reports whether the name can be printed without braces.
func isPlainIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_', 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z':
		case '0' <= c && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	switch s {
	case "true", "false", "skip", "goto", "assume", "assert", "return",
		"decl", "begin", "end", "enforce", "if", "then", "else", "fi",
		"while", "do", "od", "choose", "bool", "void", "schoose":
		return false
	}
	return true
}

func (e Ref) String() string {
	if isPlainIdent(e.Name) {
		return e.Name
	}
	return "{" + e.Name + "}"
}

func (Unknown) String() string { return "*" }

func (e Not) String() string { return "!" + parenE(e.X) }

func (e Bin) String() string {
	return parenE(e.X) + " " + e.Op.String() + " " + parenE(e.Y)
}

func (e Choose) String() string {
	return "choose(" + e.Pos.String() + ", " + e.Neg.String() + ")"
}

func parenE(e Expr) string {
	switch e.(type) {
	case Const, Ref, Unknown, Not, Choose:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

// ExprEq compares expressions structurally.
func ExprEq(a, b Expr) bool { return a.String() == b.String() }

// StmtKind enumerates the flat statement forms.
type StmtKind int

// Statement kinds.
const (
	Skip StmtKind = iota
	Assign
	Assume
	Assert
	Goto
	Call
	Return
)

// Stmt is one flat statement. Control flow is expressed with labels and
// (possibly nondeterministic multi-target) gotos; the parser desugars
// structured if/while into this form.
type Stmt struct {
	Labels []string
	Kind   StmtKind

	// Assign: parallel assignment Lhs := Rhs.
	Lhs []string
	Rhs []Expr

	// Assume/Assert condition.
	Cond Expr

	// Goto targets (one or more; several = nondeterministic choice).
	Targets []string

	// Call: CallLhs := Callee(Args). CallLhs may be empty.
	Callee  string
	Args    []Expr
	CallLhs []string

	// Return values (procedures may return several booleans).
	RetVals []Expr

	// Origin optionally records the originating C statement (set by the
	// abstraction pass; used for counterexample mapping).
	Origin any
	// Comment carries the C source text of the originating statement.
	Comment string
}

// Proc is a boolean procedure.
type Proc struct {
	Name    string
	Params  []string
	NRet    int // number of returned booleans
	Locals  []string
	Enforce Expr // data invariant, or nil
	Stmts   []*Stmt

	// labelIdx maps labels to statement indices (built by Resolve).
	labelIdx map[string]int
}

// Program is a boolean program.
type Program struct {
	Globals []string
	Procs   []*Proc
}

// Proc returns the named procedure, or nil.
func (p *Program) Proc(name string) *Proc {
	for _, pr := range p.Procs {
		if pr.Name == name {
			return pr
		}
	}
	return nil
}

// LabelIndex returns the statement index of a label.
func (pr *Proc) LabelIndex(label string) (int, bool) {
	i, ok := pr.labelIdx[label]
	return i, ok
}

// Vars returns the variables in scope in the procedure: globals are not
// included; callers combine with Program.Globals.
func (pr *Proc) Vars() []string {
	out := make([]string, 0, len(pr.Params)+len(pr.Locals))
	out = append(out, pr.Params...)
	out = append(out, pr.Locals...)
	return out
}

// Resolve validates the program: labels resolve, variables are declared,
// call arities match. It must be called before interpretation or model
// checking.
func (p *Program) Resolve() error {
	globals := map[string]bool{}
	for _, g := range p.Globals {
		if globals[g] {
			return fmt.Errorf("bp: duplicate global %q", g)
		}
		globals[g] = true
	}
	seen := map[string]bool{}
	for _, pr := range p.Procs {
		if seen[pr.Name] {
			return fmt.Errorf("bp: duplicate procedure %q", pr.Name)
		}
		seen[pr.Name] = true
	}
	for _, pr := range p.Procs {
		if err := p.resolveProc(pr, globals); err != nil {
			return err
		}
	}
	return nil
}

func (p *Program) resolveProc(pr *Proc, globals map[string]bool) error {
	scope := map[string]bool{}
	for _, v := range append(append([]string{}, pr.Params...), pr.Locals...) {
		if scope[v] {
			return fmt.Errorf("bp: %s: duplicate variable %q", pr.Name, v)
		}
		scope[v] = true
	}
	inScope := func(v string) bool { return scope[v] || globals[v] }

	pr.labelIdx = map[string]int{}
	for i, s := range pr.Stmts {
		for _, l := range s.Labels {
			if _, dup := pr.labelIdx[l]; dup {
				return fmt.Errorf("bp: %s: duplicate label %q", pr.Name, l)
			}
			pr.labelIdx[l] = i
		}
	}

	var checkExpr func(e Expr) error
	checkExpr = func(e Expr) error {
		switch e := e.(type) {
		case Ref:
			if !inScope(e.Name) {
				return fmt.Errorf("bp: %s: undeclared variable %q", pr.Name, e.Name)
			}
		case Not:
			return checkExpr(e.X)
		case Bin:
			if err := checkExpr(e.X); err != nil {
				return err
			}
			return checkExpr(e.Y)
		case Choose:
			if err := checkExpr(e.Pos); err != nil {
				return err
			}
			return checkExpr(e.Neg)
		}
		return nil
	}

	if pr.Enforce != nil {
		if err := checkExpr(pr.Enforce); err != nil {
			return err
		}
	}
	for i, s := range pr.Stmts {
		switch s.Kind {
		case Assign:
			if len(s.Lhs) != len(s.Rhs) {
				return fmt.Errorf("bp: %s stmt %d: %d targets, %d values", pr.Name, i, len(s.Lhs), len(s.Rhs))
			}
			for _, v := range s.Lhs {
				if !inScope(v) {
					return fmt.Errorf("bp: %s stmt %d: undeclared target %q", pr.Name, i, v)
				}
			}
			for _, e := range s.Rhs {
				if err := checkExpr(e); err != nil {
					return err
				}
			}
		case Assume, Assert:
			if err := checkExpr(s.Cond); err != nil {
				return err
			}
		case Goto:
			if len(s.Targets) == 0 {
				return fmt.Errorf("bp: %s stmt %d: goto with no targets", pr.Name, i)
			}
			for _, tgt := range s.Targets {
				if _, ok := pr.labelIdx[tgt]; !ok {
					return fmt.Errorf("bp: %s stmt %d: unknown label %q", pr.Name, i, tgt)
				}
			}
		case Call:
			callee := p.Proc(s.Callee)
			if callee == nil {
				return fmt.Errorf("bp: %s stmt %d: call to unknown procedure %q", pr.Name, i, s.Callee)
			}
			if len(s.Args) != len(callee.Params) {
				return fmt.Errorf("bp: %s stmt %d: %s takes %d args, got %d",
					pr.Name, i, s.Callee, len(callee.Params), len(s.Args))
			}
			if len(s.CallLhs) != 0 && len(s.CallLhs) != callee.NRet {
				return fmt.Errorf("bp: %s stmt %d: %s returns %d values, %d targets",
					pr.Name, i, s.Callee, callee.NRet, len(s.CallLhs))
			}
			for _, v := range s.CallLhs {
				if !inScope(v) {
					return fmt.Errorf("bp: %s stmt %d: undeclared target %q", pr.Name, i, v)
				}
			}
			for _, e := range s.Args {
				if err := checkExpr(e); err != nil {
					return err
				}
			}
		case Return:
			if len(s.RetVals) != pr.NRet {
				return fmt.Errorf("bp: %s stmt %d: return with %d values, procedure returns %d",
					pr.Name, i, len(s.RetVals), pr.NRet)
			}
			for _, e := range s.RetVals {
				if err := checkExpr(e); err != nil {
					return err
				}
			}
		}
	}
	if len(pr.Stmts) == 0 || pr.Stmts[len(pr.Stmts)-1].Kind != Return {
		return fmt.Errorf("bp: %s: must end with a return statement", pr.Name)
	}
	return nil
}

// MkAnd, MkOr, MkNot build simplified expressions.

// MkNot negates with simplification.
func MkNot(e Expr) Expr {
	switch e := e.(type) {
	case Const:
		return Const{!e.Val}
	case Not:
		return e.X
	}
	return Not{X: e}
}

// MkAnd conjoins with simplification.
func MkAnd(a, b Expr) Expr {
	if c, ok := a.(Const); ok {
		if c.Val {
			return b
		}
		return Const{false}
	}
	if c, ok := b.(Const); ok {
		if c.Val {
			return a
		}
		return Const{false}
	}
	return Bin{Op: And, X: a, Y: b}
}

// MkOr disjoins with simplification.
func MkOr(a, b Expr) Expr {
	if c, ok := a.(Const); ok {
		if c.Val {
			return Const{true}
		}
		return b
	}
	if c, ok := b.(Const); ok {
		if c.Val {
			return Const{true}
		}
		return a
	}
	return Bin{Op: Or, X: a, Y: b}
}

// AndAll folds MkAnd (true for empty).
func AndAll(es []Expr) Expr {
	out := Expr(Const{true})
	for _, e := range es {
		out = MkAnd(out, e)
	}
	return out
}

// OrAll folds MkOr (false for empty).
func OrAll(es []Expr) Expr {
	out := Expr(Const{false})
	for _, e := range es {
		out = MkOr(out, e)
	}
	return out
}

// StmtString renders a statement without labels (diagnostics).
func StmtString(s *Stmt) string {
	switch s.Kind {
	case Skip:
		return "skip;"
	case Assign:
		return strings.Join(refs(s.Lhs), ", ") + " := " + exprs(s.Rhs) + ";"
	case Assume:
		return "assume(" + s.Cond.String() + ");"
	case Assert:
		return "assert(" + s.Cond.String() + ");"
	case Goto:
		return "goto " + strings.Join(refs(s.Targets), ", ") + ";"
	case Call:
		call := s.Callee + "(" + exprs(s.Args) + ")"
		if len(s.CallLhs) > 0 {
			return strings.Join(refs(s.CallLhs), ", ") + " := " + call + ";"
		}
		return call + ";"
	case Return:
		if len(s.RetVals) == 0 {
			return "return;"
		}
		return "return " + exprs(s.RetVals) + ";"
	}
	return "?;"
}

func refs(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = Ref{Name: n}.String()
	}
	return out
}

func exprs(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}
