// Package cinterp is a concrete interpreter for normalized MiniC programs
// over the little-machine memory model of package form (every variable
// lives at a distinct address; all reads and writes go through a flat
// integer memory). It is a testing substrate: the paper's soundness
// theorem — every feasible C execution maps to a feasible boolean-program
// execution with matching predicate valuations — is checked property-style
// by replaying interpreter runs against Bebop's reachable-state sets.
package cinterp

import (
	"fmt"
	"math/rand"

	"predabs/internal/cast"
	"predabs/internal/cnorm"
	"predabs/internal/form"
)

// Status describes how a run ended.
type Status int

// Run outcomes.
const (
	// Completed: the entry function returned normally.
	Completed Status = iota
	// Blocked: an assume statement filtered the execution out.
	Blocked
	// AssertFailed: an assert evaluated to false.
	AssertFailed
	// OutOfFuel: the step budget was exhausted.
	OutOfFuel
	// Stuck: a runtime error (NULL dereference, missing function).
	Stuck
)

func (s Status) String() string {
	switch s {
	case Completed:
		return "completed"
	case Blocked:
		return "blocked"
	case AssertFailed:
		return "assert-failed"
	case OutOfFuel:
		return "out-of-fuel"
	case Stuck:
		return "stuck"
	}
	return "?"
}

// StmtVisit records one statement about to execute, with the frame's
// variable renaming in force (for predicate evaluation).
type StmtVisit struct {
	Fn   string
	Stmt cast.Stmt
	// Rename maps source-local names to the frame-qualified environment
	// names; globals are unrenamed.
	Rename map[string]string
	// Env is the machine state BEFORE the statement (shared, read-only).
	Env *form.Env
}

// Interp executes normalized MiniC programs.
type Interp struct {
	Res *cnorm.Result
	// Env is the machine state (callers pre-populate globals/heap).
	Env *form.Env
	// Rand initializes uninitialized locals (nil = zero).
	Rand *rand.Rand
	// MaxSteps bounds execution (default 20000).
	MaxSteps int
	// OnStmt, if set, observes every assignment/call/assume/assert about
	// to execute.
	OnStmt func(StmtVisit)

	steps   int
	frameN  int
	status  Status
	failMsg string
}

// instr is one flattened instruction.
type instr struct {
	kind   byte // 'a'=assign, 'c'=call stmt, 'u'=assume, 't'=assert, 'g'=goto, 'b'=branch, 'r'=return, 's'=skip
	stmt   cast.Stmt
	cond   cast.Expr
	tTgt   int
	fTgt   int
	gTgt   int
	retVar string
}

// flatten lowers a function body to a jump-threaded instruction list.
type flattener struct {
	instrs []instr
	labels map[string]int
	// fixups: (instr index, label) pairs resolved at the end.
	fixups []struct {
		idx   int
		label string
		which byte // 'g', 't', 'f'
	}
}

func (fl *flattener) emit(i instr) int {
	fl.instrs = append(fl.instrs, i)
	return len(fl.instrs) - 1
}

func (fl *flattener) stmt(s cast.Stmt) {
	switch s := s.(type) {
	case *cast.Block:
		for _, sub := range s.Stmts {
			fl.stmt(sub)
		}
	case *cast.DeclStmt, *cast.EmptyStmt:
		// no-op
	case *cast.LabeledStmt:
		at := len(fl.instrs)
		fl.labels[s.Label] = at
		fl.stmt(s.Stmt)
		if len(fl.instrs) == at {
			// Label on an empty statement: pin to a skip.
			fl.emit(instr{kind: 's', stmt: s})
		}
	case *cast.AssignStmt:
		fl.emit(instr{kind: 'a', stmt: s})
	case *cast.ExprStmt:
		fl.emit(instr{kind: 'c', stmt: s})
	case *cast.AssumeStmt:
		fl.emit(instr{kind: 'u', stmt: s, cond: s.X})
	case *cast.AssertStmt:
		fl.emit(instr{kind: 't', stmt: s, cond: s.X})
	case *cast.GotoStmt:
		idx := fl.emit(instr{kind: 'g', stmt: s})
		fl.fixups = append(fl.fixups, struct {
			idx   int
			label string
			which byte
		}{idx, s.Label, 'g'})
	case *cast.IfStmt:
		bIdx := fl.emit(instr{kind: 'b', stmt: s, cond: s.Cond})
		fl.instrs[bIdx].tTgt = len(fl.instrs)
		fl.stmt(s.Then)
		if s.Else != nil {
			gIdx := fl.emit(instr{kind: 'g', stmt: s})
			fl.instrs[bIdx].fTgt = len(fl.instrs)
			fl.stmt(s.Else)
			fl.instrs[gIdx].gTgt = len(fl.instrs)
		} else {
			fl.instrs[bIdx].fTgt = len(fl.instrs)
		}
	case *cast.WhileStmt:
		top := len(fl.instrs)
		bIdx := fl.emit(instr{kind: 'b', stmt: s, cond: s.Cond})
		fl.instrs[bIdx].tTgt = len(fl.instrs)
		fl.stmt(s.Body)
		g := fl.emit(instr{kind: 'g', stmt: s})
		fl.instrs[g].gTgt = top
		fl.instrs[bIdx].fTgt = len(fl.instrs)
	case *cast.ReturnStmt:
		ret := ""
		if s.X != nil {
			if v, ok := s.X.(*cast.VarRef); ok {
				ret = v.Name
			}
		}
		fl.emit(instr{kind: 'r', stmt: s, retVar: ret})
	}
}

func flatten(f *cast.FuncDef) ([]instr, error) {
	fl := &flattener{labels: map[string]int{}}
	fl.stmt(f.Body)
	fl.emit(instr{kind: 'r'})
	for _, fix := range fl.fixups {
		tgt, ok := fl.labels[fix.label]
		if !ok {
			return nil, fmt.Errorf("cinterp: %s: unknown label %q", f.Name, fix.label)
		}
		fl.instrs[fix.idx].gTgt = tgt
	}
	return fl.instrs, nil
}

// Run executes the entry function with the given argument values.
func (in *Interp) Run(entry string, args []int64) (Status, int64, error) {
	if in.Env == nil {
		in.Env = form.NewEnv()
	}
	if in.MaxSteps == 0 {
		in.MaxSteps = 20000
	}
	in.steps = 0
	in.frameN = 0
	in.status = Completed
	ret, err := in.call(entry, args)
	if err != nil {
		return Stuck, 0, err
	}
	return in.status, ret, nil
}

// frame carries one activation's renaming.
type frame struct {
	fn     string
	rename map[string]string
}

func (in *Interp) newFrame(fn string) *frame {
	in.frameN++
	f := &frame{fn: fn, rename: map[string]string{}}
	for v := range in.Res.Info.FuncVars[fn] {
		f.rename[v] = fmt.Sprintf("f%d::%s", in.frameN, v)
	}
	return f
}

// renameTerm qualifies frame locals in a term.
func (f *frame) renameTerm(t form.Term) form.Term {
	for _, v := range form.TermVars(t) {
		if q, ok := f.rename[v]; ok {
			t = form.SubstTerm(t, form.Var{Name: v}, form.Var{Name: q})
		}
	}
	return t
}

// RenameFormula qualifies frame locals in a formula (exported for the
// soundness test's predicate evaluation).
func RenameFormula(rename map[string]string, fl form.Formula) form.Formula {
	for _, v := range form.FormulaVars(fl) {
		if q, ok := rename[v]; ok {
			fl = form.Subst(fl, form.Var{Name: v}, form.Var{Name: q})
		}
	}
	return fl
}

func (in *Interp) call(fn string, args []int64) (int64, error) {
	f := in.Res.Prog.Func(fn)
	if f == nil {
		return 0, fmt.Errorf("cinterp: no function %q", fn)
	}
	fr := in.newFrame(fn)
	// Bind parameters; initialize other locals (uninitialized in C).
	for i, p := range f.Params {
		var v int64
		if i < len(args) {
			v = args[i]
		}
		if err := in.Env.Store(form.Var{Name: fr.rename[p.Name]}, v); err != nil {
			return 0, err
		}
	}
	isParam := map[string]bool{}
	for _, p := range f.Params {
		isParam[p.Name] = true
	}
	for v := range in.Res.Info.FuncVars[fn] {
		if isParam[v] {
			continue
		}
		var init int64
		if in.Rand != nil {
			init = int64(in.Rand.Intn(7)) - 3
		}
		if err := in.Env.Store(form.Var{Name: fr.rename[v]}, init); err != nil {
			return 0, err
		}
	}

	instrs, err := flatten(f)
	if err != nil {
		return 0, err
	}
	pc := 0
	for {
		in.steps++
		if in.steps > in.MaxSteps {
			in.status = OutOfFuel
			return 0, nil
		}
		if pc >= len(instrs) {
			return 0, nil
		}
		ins := instrs[pc]
		switch ins.kind {
		case 's':
			pc++
		case 'g':
			pc = ins.gTgt
		case 'b':
			in.visit(fr, ins.stmt)
			v, err := in.evalCond(fr, ins.cond)
			if err != nil {
				return 0, err
			}
			if v {
				pc = ins.tTgt
			} else {
				pc = ins.fTgt
			}
		case 'u':
			in.visit(fr, ins.stmt)
			v, err := in.evalCond(fr, ins.cond)
			if err != nil {
				return 0, err
			}
			if !v {
				in.status = Blocked
				return 0, nil
			}
			pc++
		case 't':
			in.visit(fr, ins.stmt)
			v, err := in.evalCond(fr, ins.cond)
			if err != nil {
				return 0, err
			}
			if !v {
				in.status = AssertFailed
				in.failMsg = fmt.Sprintf("%s: assert(%s)", fn, ins.cond)
				return 0, nil
			}
			pc++
		case 'a':
			as := ins.stmt.(*cast.AssignStmt)
			in.visit(fr, as)
			if call, ok := as.Rhs.(*cast.Call); ok {
				rv, err := in.doCall(fr, call)
				if err != nil || in.status != Completed {
					return 0, err
				}
				if err := in.store(fr, as.Lhs, rv); err != nil {
					return 0, err
				}
			} else {
				rv, err := in.evalExpr(fr, as.Rhs)
				if err != nil {
					return 0, err
				}
				if err := in.store(fr, as.Lhs, rv); err != nil {
					return 0, err
				}
			}
			pc++
		case 'c':
			es := ins.stmt.(*cast.ExprStmt)
			in.visit(fr, es)
			call, ok := es.X.(*cast.Call)
			if !ok {
				pc++
				continue
			}
			if _, err := in.doCall(fr, call); err != nil || in.status != Completed {
				return 0, err
			}
			pc++
		case 'r':
			if ins.retVar != "" {
				name := ins.retVar
				if q, ok := fr.rename[name]; ok {
					name = q // local return variable; globals stay bare
				}
				return in.Env.Eval(form.Var{Name: name})
			}
			return 0, nil
		}
	}
}

func (in *Interp) visit(fr *frame, s cast.Stmt) {
	if in.OnStmt != nil {
		in.OnStmt(StmtVisit{Fn: fr.fn, Stmt: s, Rename: fr.rename, Env: in.Env})
	}
}

func (in *Interp) doCall(fr *frame, call *cast.Call) (int64, error) {
	args := make([]int64, len(call.Args))
	for i, a := range call.Args {
		v, err := in.evalExpr(fr, a)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	return in.call(call.Name, args)
}

func (in *Interp) evalExpr(fr *frame, e cast.Expr) (int64, error) {
	t, err := form.FromExpr(e)
	if err != nil {
		return 0, err
	}
	return in.Env.Eval(fr.renameTerm(t))
}

func (in *Interp) evalCond(fr *frame, e cast.Expr) (bool, error) {
	fl, err := form.FromCond(e)
	if err != nil {
		return false, err
	}
	return in.Env.EvalFormula(RenameFormula(fr.rename, fl))
}

func (in *Interp) store(fr *frame, lhs cast.Expr, v int64) error {
	t, err := form.FromExpr(lhs)
	if err != nil {
		return err
	}
	return in.Env.Store(fr.renameTerm(t), v)
}

// FailMessage describes a failed assert.
func (in *Interp) FailMessage() string { return in.failMsg }
