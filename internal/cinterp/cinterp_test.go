package cinterp

import (
	"math/rand"
	"testing"

	"predabs/internal/cnorm"
	"predabs/internal/cparse"
	"predabs/internal/ctype"
	"predabs/internal/form"
)

func load(t *testing.T, src string) *cnorm.Result {
	t.Helper()
	prog, err := cparse.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := ctype.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	res, err := cnorm.Normalize(info)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return res
}

func TestArithmetic(t *testing.T) {
	res := load(t, `
int add3(int a, int b, int c) {
  int s;
  s = a + b;
  s = s + c;
  return s;
}
`)
	in := &Interp{Res: res}
	st, v, err := in.Run("add3", []int64{1, 2, 3})
	if err != nil || st != Completed || v != 6 {
		t.Fatalf("got %v %d %v", st, v, err)
	}
}

func TestControlFlow(t *testing.T) {
	res := load(t, `
int collatzSteps(int n) {
  int steps;
  steps = 0;
  while (n != 1) {
    if (n % 2 == 0) {
      n = n / 2;
    } else {
      n = 3 * n + 1;
    }
    steps = steps + 1;
    if (steps > 1000) { break; }
  }
  return steps;
}
`)
	in := &Interp{Res: res}
	st, v, err := in.Run("collatzSteps", []int64{6})
	if err != nil || st != Completed {
		t.Fatalf("got %v %v", st, err)
	}
	if v != 8 { // 6→3→10→5→16→8→4→2→1
		t.Fatalf("collatz(6) steps = %d, want 8", v)
	}
}

func TestRecursion(t *testing.T) {
	res := load(t, `
int fib(int n) {
  int a;
  int b;
  if (n <= 1) { return n; }
  a = fib(n - 1);
  b = fib(n - 2);
  return a + b;
}
`)
	in := &Interp{Res: res, MaxSteps: 100000}
	st, v, err := in.Run("fib", []int64{10})
	if err != nil || st != Completed || v != 55 {
		t.Fatalf("fib(10) = %d (%v, %v), want 55", v, st, err)
	}
}

func TestPointers(t *testing.T) {
	res := load(t, `
void bump(int* p) {
  *p = *p + 1;
}
int main(int x) {
  int v;
  v = x;
  bump(&v);
  bump(&v);
  return v;
}
`)
	in := &Interp{Res: res}
	st, v, err := in.Run("main", []int64{40})
	if err != nil || st != Completed || v != 42 {
		t.Fatalf("got %v %d %v", st, v, err)
	}
}

func TestStructsAndHeap(t *testing.T) {
	res := load(t, `
struct cell { int val; struct cell* next; };
int sum(struct cell* l) {
  int s;
  s = 0;
  while (l != NULL) {
    s = s + l->val;
    l = l->next;
  }
  return s;
}
`)
	// Build a two-cell list in the environment: n1 -> n2 -> NULL.
	env := form.NewEnv()
	n1 := env.AddrOfVar("$n1")
	n2 := env.AddrOfVar("$n2")
	env.Store(form.Sel{X: form.Var{Name: "$n1"}, Field: "val"}, 10)
	env.Store(form.Sel{X: form.Var{Name: "$n1"}, Field: "next"}, n2)
	env.Store(form.Sel{X: form.Var{Name: "$n2"}, Field: "val"}, 32)
	env.Store(form.Sel{X: form.Var{Name: "$n2"}, Field: "next"}, 0)
	in := &Interp{Res: res, Env: env}
	st, v, err := in.Run("sum", []int64{n1})
	if err != nil || st != Completed || v != 42 {
		t.Fatalf("got %v %d %v", st, v, err)
	}
}

func TestAssumeBlocksAndAssertFails(t *testing.T) {
	res := load(t, `
int f(int x) {
  assume(x > 0);
  assert(x > 1);
  return x;
}
`)
	in := &Interp{Res: res}
	st, _, err := in.Run("f", []int64{-1})
	if err != nil || st != Blocked {
		t.Fatalf("x=-1: got %v %v, want blocked", st, err)
	}
	st, _, err = in.Run("f", []int64{1})
	if err != nil || st != AssertFailed {
		t.Fatalf("x=1: got %v %v, want assert-failed", st, err)
	}
	st, _, err = in.Run("f", []int64{2})
	if err != nil || st != Completed {
		t.Fatalf("x=2: got %v %v, want completed", st, err)
	}
}

func TestGotoAndLabels(t *testing.T) {
	res := load(t, `
int f(int n) {
  int acc;
  acc = 0;
top:
  if (n <= 0) { goto done; }
  acc = acc + n;
  n = n - 1;
  goto top;
done:
  return acc;
}
`)
	in := &Interp{Res: res}
	st, v, err := in.Run("f", []int64{4})
	if err != nil || st != Completed || v != 10 {
		t.Fatalf("got %v %d %v", st, v, err)
	}
}

func TestGlobals(t *testing.T) {
	res := load(t, `
int counter;
void tick(void) { counter = counter + 1; }
int main(void) {
  counter = 0;
  tick();
  tick();
  tick();
  return counter;
}
`)
	in := &Interp{Res: res}
	st, v, err := in.Run("main", nil)
	if err != nil || st != Completed || v != 3 {
		t.Fatalf("got %v %d %v", st, v, err)
	}
}

func TestRecursiveLocalsAreDistinct(t *testing.T) {
	res := load(t, `
int down(int n) {
  int mine;
  int sub;
  mine = n;
  if (n <= 0) { return 0; }
  sub = down(n - 1);
  return mine; /* must still be n, not clobbered by the recursive frame */
}
`)
	in := &Interp{Res: res}
	st, v, err := in.Run("down", []int64{5})
	if err != nil || st != Completed || v != 5 {
		t.Fatalf("got %v %d %v (frames must not share locals)", st, v, err)
	}
}

func TestOnStmtObserver(t *testing.T) {
	res := load(t, `
int f(int x) {
  x = x + 1;
  x = x + 1;
  return x;
}
`)
	count := 0
	in := &Interp{Res: res, OnStmt: func(v StmtVisit) {
		if v.Fn == "f" {
			count++
		}
	}}
	if _, _, err := in.Run("f", []int64{0}); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("observed %d statements, want 2", count)
	}
}

func TestUninitializedLocalsRandom(t *testing.T) {
	res := load(t, `
int f(void) {
  int junk;
  return junk;
}
`)
	seen := map[int64]bool{}
	for seed := int64(0); seed < 30; seed++ {
		in := &Interp{Res: res, Rand: rand.New(rand.NewSource(seed))}
		_, v, err := in.Run("f", nil)
		if err != nil {
			t.Fatal(err)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Fatal("uninitialized locals should vary across seeds")
	}
}

func TestOutOfFuel(t *testing.T) {
	res := load(t, `
void spin(void) {
  int x;
  x = 0;
  while (x == 0) { x = 0; }
}
`)
	in := &Interp{Res: res, MaxSteps: 100}
	st, _, err := in.Run("spin", nil)
	if err != nil || st != OutOfFuel {
		t.Fatalf("got %v %v", st, err)
	}
}
