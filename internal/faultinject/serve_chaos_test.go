// Serve-chaos harness: the daemon-level counterpart of the kill/resume
// matrix in crash_test.go. Jobs run through a real predabsd supervisor
// with workers scheduled to die (SIGKILL via the deterministic
// checkpoint crash hook) at every commit point; the daemon's retries
// must resume each job from its journal and deliver a verdict
// byte-identical to a direct, uninterrupted slam run. The companion
// tests pin the soundness retreat (a crash-looping job exhausts its
// budget into outcome "unknown" — never a verdict, and in particular
// never "verified" for the buggy floppy driver) and ledger-driven
// resume across a hard daemon kill and restart.
//
// Run via `make serve-chaos`.
package faultinject_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"predabs/internal/corpus"
	"predabs/internal/server"
)

// jobEvents fetches a job's NDJSON event stream from base, validates it
// (dense strictly-increasing sequences, per-type payload rules — the
// same checker cmd/tracelint -events runs), and decodes it.
func jobEvents(t *testing.T, base, id string, after uint64) []server.JobEvent {
	t.Helper()
	url := fmt.Sprintf("%s/jobs/%s/events", base, id)
	if after > 0 {
		url += fmt.Sprintf("?after=%d", after)
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d (%v)", url, resp.StatusCode, err)
	}
	if _, err := server.ValidateEvents(bytes.NewReader(body)); err != nil {
		t.Fatalf("job %s event stream invalid: %v", id, err)
	}
	var out []server.JobEvent
	for _, line := range bytes.Split(body, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev server.JobEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("job %s event line %q: %v", id, line, err)
		}
		out = append(out, ev)
	}
	return out
}

var predabsdBuild struct {
	once sync.Once
	dir  string
	path string
	err  error
}

// predabsdBin builds cmd/predabsd once per test process. Its temp dir is
// cleaned up by TestMain in crash_test.go.
func predabsdBin(t *testing.T) string {
	t.Helper()
	predabsdBuild.once.Do(func() {
		dir, err := os.MkdirTemp("", "predabs-serve-chaos-")
		if err != nil {
			predabsdBuild.err = err
			return
		}
		predabsdBuild.dir = dir
		wd, _ := os.Getwd()
		build := exec.Command("go", "build", "-o", dir, "predabs/cmd/predabsd")
		build.Dir = filepath.Dir(filepath.Dir(wd)) // internal/faultinject -> repo root
		if out, err := build.CombinedOutput(); err != nil {
			predabsdBuild.err = fmt.Errorf("building predabsd: %v\n%s", err, out)
			return
		}
		predabsdBuild.path = filepath.Join(dir, "predabsd")
	})
	if predabsdBuild.err != nil {
		t.Fatal(predabsdBuild.err)
	}
	return predabsdBuild.path
}

// chaosServer starts an in-process daemon core around real re-exec'd
// predabsd workers, tuned for fast deterministic retries.
func chaosServer(t *testing.T, mutate func(*server.Config)) *server.Server {
	t.Helper()
	cfg := server.Config{
		DataDir:        t.TempDir(),
		WorkerBin:      predabsdBin(t),
		Workers:        4,
		QueueCap:       64,
		AttemptTimeout: 60 * time.Second,
		Retries:        3,
		RetryBase:      2 * time.Millisecond,
		RetryMax:       20 * time.Millisecond,
		AllowJobEnv:    true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// awaitTerminal polls until the job leaves the queue/run/retry states.
func awaitTerminal(t *testing.T, s *server.Server, id string, timeout time.Duration) server.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, ok := s.Status(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State == server.StateDone || st.State == server.StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q after %v", id, st.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeChaosKillEveryCommitByteIdentical is the supervised kill
// matrix: every Table 1 driver × a worker SIGKILL at every checkpoint
// commit point (plus one past the last, where the hook never fires).
// For each cell a direct probe run establishes whether that kill index
// fires at all; the daemon job — whose workers die the same way on
// every attempt, resuming one commit further each time — must end
// "done" with stdout and exit code byte-identical to the uninterrupted
// direct slam reference, with retries observed exactly when the kill
// fired.
func TestServeChaosKillEveryCommitByteIdentical(t *testing.T) {
	bin := slamBin(t)
	s := chaosServer(t, nil)

	type cell struct {
		id          string
		name        string
		commit      int
		probeKilled bool
		ref         slamRun
	}
	var cells []cell
	for _, p := range corpus.Drivers() {
		dir := t.TempDir()
		src := writeFile(t, dir, p.Name+".c", p.Source)
		spec := writeFile(t, dir, p.Name+".slic", p.Spec)
		ref := runSlam(t, bin, nil, "-spec", spec, "-entry", p.Entry, src)
		if ref.killed {
			t.Fatalf("%s: reference run was killed", p.Name)
		}
		for commit := 1; commit <= maxKillPoints; commit++ {
			state := filepath.Join(t.TempDir(), "state")
			probe := runSlam(t, bin, crashEnv(commit, false),
				"-state", state, "-spec", spec, "-entry", p.Entry, src)
			id, err := s.Submit(server.JobSpec{
				Source: p.Source, Spec: p.Spec, Entry: p.Entry,
				Env: crashEnv(commit, false),
			})
			if err != nil {
				t.Fatalf("%s commit %d: submit: %v", p.Name, commit, err)
			}
			cells = append(cells, cell{id, p.Name, commit, probe.killed, ref})
		}
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	killedCells := 0
	for _, c := range cells {
		st := awaitTerminal(t, s, c.id, 60*time.Second)
		label := fmt.Sprintf("%s commit %d (job %s)", c.name, c.commit, c.id)
		if st.State != server.StateDone {
			t.Errorf("%s: state %q error %q — the supervisor must retry a crashed worker to completion",
				label, st.State, st.Error)
			continue
		}
		if st.Stdout != c.ref.stdout || st.ExitCode != c.ref.code {
			t.Errorf("%s: daemon verdict not byte-identical to direct run (exit %d, want %d):\n got: %q\nwant: %q",
				label, st.ExitCode, c.ref.code, st.Stdout, c.ref.stdout)
		}
		if c.probeKilled {
			killedCells++
			if st.Attempts < 2 {
				t.Errorf("%s: kill fired in the probe but the daemon finished in %d attempt(s)",
					label, st.Attempts)
			}
		} else if st.Attempts != 1 {
			t.Errorf("%s: kill never fires at this commit, yet the daemon took %d attempts",
				label, st.Attempts)
		}
		// Worker kills at every commit point must leave each job's event
		// log consistent: jobEvents validates sequence density, and the
		// stream must record every spawned attempt and close with "done".
		evs := jobEvents(t, ts.URL, c.id, 0)
		if len(evs) == 0 || evs[0].Seq != 1 {
			t.Errorf("%s: event stream does not start at seq 1", label)
			continue
		}
		spawns := 0
		for _, ev := range evs {
			if ev.Type == server.EventSpawn {
				spawns++
			}
		}
		if spawns != st.Attempts {
			t.Errorf("%s: %d spawn events for %d attempts", label, spawns, st.Attempts)
		}
		if last := evs[len(evs)-1]; last.Type != server.EventState || last.State != server.StateDone {
			t.Errorf("%s: event stream ends with %s/%s, want state/done", label, last.Type, last.State)
		}
	}
	if killedCells == 0 {
		t.Fatal("no matrix cell actually killed a worker; the chaos schedule is inert")
	}
	c := s.CounterSnapshot()
	if c.Failed != 0 || c.Completed != int64(len(cells)) || c.Retries == 0 {
		t.Fatalf("matrix counters: %+v (killed cells: %d)", c, killedCells)
	}
	t.Logf("matrix: %d cells, %d with kills, counters %+v", len(cells), killedCells, c)
}

// TestServeChaosExhaustionNeverVerifiesBuggyDriver is the soundness
// oracle under supervision: the buggy floppy driver's workers die with a
// torn journal frame at their first commit — no attempt ever makes
// durable progress — so the retry budget runs out. The daemon must
// retreat to outcome "unknown" with the unknown exit code; it must never
// synthesize a verdict, and in particular never report the buggy driver
// verified.
func TestServeChaosExhaustionNeverVerifiesBuggyDriver(t *testing.T) {
	floppy := corpus.Drivers()[0]
	if !floppy.ExpectError {
		t.Fatalf("corpus reordered: %s is not the buggy driver", floppy.Name)
	}
	s := chaosServer(t, func(c *server.Config) { c.Retries = 2 })
	id, err := s.Submit(server.JobSpec{
		Source: floppy.Source, Spec: floppy.Spec, Entry: floppy.Entry,
		Env: crashEnv(1, true), // torn frame: the journal never grows
	})
	if err != nil {
		t.Fatal(err)
	}
	st := awaitTerminal(t, s, id, 60*time.Second)
	if st.State != server.StateFailed {
		t.Fatalf("crash-looping job ended %q (outcome %q) — expected retry exhaustion", st.State, st.Outcome)
	}
	if st.Attempts != 3 {
		t.Errorf("attempts %d, want 3 (retries=2)", st.Attempts)
	}
	if st.Outcome != "unknown" || st.ExitCode != 2 {
		t.Fatalf("exhausted job reported outcome %q exit %d; the only sound retreat is unknown/2",
			st.Outcome, st.ExitCode)
	}
	if strings.Contains(st.Stdout, "verified") {
		t.Fatalf("a job whose workers all died claims verification:\n%s", st.Stdout)
	}
}

// firstSeq reports the first record's sequence (0 for an empty stream).
func firstSeq(evs []server.JobEvent) uint64 {
	if len(evs) == 0 {
		return 0
	}
	return evs[0].Seq
}

// daemonProc is one real predabsd process under test.
type daemonProc struct {
	cmd  *exec.Cmd
	base string // http://host:port
	errb *bytes.Buffer
}

// startDaemon launches the real predabsd binary on a kernel-assigned
// port and waits for its readiness line.
func startDaemon(t *testing.T, dataDir string, extraArgs ...string) *daemonProc {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0", "-data", dataDir,
		"-allow-job-env", "-workers", "1", "-v",
	}, extraArgs...)
	return startProc(t, nil, args...)
}

// startProc launches predabsd with extra environment (the fleet chaos
// harness injects its crash-commit hook this way) and waits for the
// readiness line.
func startProc(t *testing.T, extraEnv []string, args ...string) *daemonProc {
	t.Helper()
	cmd := exec.Command(predabsdBin(t), args...)
	if len(extraEnv) > 0 {
		cmd.Env = append(os.Environ(), extraEnv...)
	}
	var errb bytes.Buffer
	cmd.Stderr = &errb
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	ready := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "predabsd: listening on "); ok {
				ready <- rest
				break
			}
		}
		close(ready)
	}()
	select {
	case base, ok := <-ready:
		if !ok {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("predabsd exited before becoming ready:\n%s", errb.String())
		}
		return &daemonProc{cmd: cmd, base: base, errb: &errb}
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("predabsd never became ready:\n%s", errb.String())
		return nil
	}
}

func (d *daemonProc) status(t *testing.T, id string) (server.JobStatus, bool) {
	t.Helper()
	resp, err := http.Get(d.base + "/jobs/" + id)
	if err != nil {
		return server.JobStatus{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return server.JobStatus{}, false
	}
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return st, true
}

// TestServeChaosDaemonKillRestartResumes drives the full binary through
// a hard crash: a job's first worker attempt dies after one committed
// iteration, and while the supervisor sits in its long retry backoff the
// daemon itself is SIGKILLed — no drain, no ledger close. A second
// daemon over the same data dir must replay the ledger, re-enqueue the
// job, resume it from the journal, and deliver the byte-identical
// verdict, with the attempt budget continuing where the first daemon
// left off.
func TestServeChaosDaemonKillRestartResumes(t *testing.T) {
	drv := corpus.Drivers()[1] // ioctl: verified, two commit points
	bin := slamBin(t)
	dir := t.TempDir()
	src := writeFile(t, dir, drv.Name+".c", drv.Source)
	spec := writeFile(t, dir, drv.Name+".slic", drv.Spec)
	ref := runSlam(t, bin, nil, "-spec", spec, "-entry", drv.Entry, src)
	if ref.killed || ref.code != 0 {
		t.Fatalf("reference run exit %d (killed=%t)", ref.code, ref.killed)
	}

	dataDir := t.TempDir()
	d1 := startDaemon(t, dataDir, "-retries", "5", "-retry-base", "1m", "-retry-max", "1h")
	body, _ := json.Marshal(server.JobSpec{
		Source: drv.Source, Spec: drv.Spec, Entry: drv.Entry,
		Env: crashEnv(1, false),
	})
	resp, err := http.Post(d1.base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || submitted.ID == "" {
		t.Fatalf("submit: HTTP %d, id %q", resp.StatusCode, submitted.ID)
	}

	// Wait for attempt 1 to crash into the parked backoff, then SIGKILL
	// the daemon mid-flight.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, ok := d1.status(t, submitted.ID)
		if ok && st.State == server.StateRetrying {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached retrying; stderr:\n%s", d1.errb.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Snapshot the event stream a client would have consumed before the
	// kill; its last sequence is the resume cursor checked after restart.
	before := jobEvents(t, d1.base, submitted.ID, 0)
	if len(before) == 0 {
		t.Fatal("no events recorded before the daemon kill")
	}
	cursor := before[len(before)-1].Seq
	d1.cmd.Process.Signal(syscall.SIGKILL)
	d1.cmd.Wait()

	d2 := startDaemon(t, dataDir, "-retries", "5", "-retry-base", "2ms", "-retry-max", "20ms")
	defer func() {
		d2.cmd.Process.Signal(syscall.SIGTERM)
		if err := d2.cmd.Wait(); err != nil {
			t.Errorf("restarted daemon did not exit cleanly: %v\n%s", err, d2.errb.String())
		}
	}()
	deadline = time.Now().Add(60 * time.Second)
	for {
		st, ok := d2.status(t, submitted.ID)
		if ok && st.State == server.StateDone {
			if !st.Resumed {
				t.Error("restarted daemon does not mark the job resumed")
			}
			if st.Attempts < 2 {
				t.Errorf("attempts %d after a restart, want the durable count to continue past 1", st.Attempts)
			}
			if st.Stdout != ref.stdout || st.ExitCode != ref.code {
				t.Errorf("resumed verdict not byte-identical (exit %d, want %d):\n got: %q\nwant: %q",
					st.ExitCode, ref.code, st.Stdout, ref.stdout)
			}
			// The event log rode out the SIGKILL: the pre-kill records
			// replay unchanged, and a client resuming with its pre-kill
			// cursor observes a dense continuation — no gap, no duplicate.
			after := jobEvents(t, d2.base, submitted.ID, 0)
			if len(after) <= len(before) {
				t.Errorf("event log did not grow across the restart (%d -> %d records)", len(before), len(after))
			}
			for i, ev := range before {
				if i >= len(after) || after[i] != ev {
					t.Errorf("pre-kill event %d (seq %d) changed or vanished across the restart", i, ev.Seq)
					break
				}
			}
			resumed := jobEvents(t, d2.base, submitted.ID, cursor)
			if len(resumed) == 0 || resumed[0].Seq != cursor+1 {
				t.Errorf("resume cursor %d did not continue densely: got %d records starting at seq %d",
					cursor, len(resumed), firstSeq(resumed))
			}
			break
		}
		if ok && st.State == server.StateFailed {
			t.Fatalf("resumed job failed: %s\nstderr:\n%s", st.Error, d2.errb.String())
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed job never finished; stderr:\n%s", d2.errb.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
