package faultinject

import (
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sync"
	"syscall"

	"predabs/internal/checkpoint"
)

// Filesystem fault kinds, as reported by FaultFS.Injected. Each models
// one way a real disk kills a long-running daemon: the device fills
// (ENOSPC), fsync lies (journaling-filesystem error-reporting bugs), a
// write lands partially (power cut mid-sector), a read hits a bad block
// (EIO), or the rename that commits a compacted generation fails.
const (
	FSKindWriteFail  = "fs-write-fail"  // ENOSPC on a frame write
	FSKindShortWrite = "fs-short-write" // partial write, then ENOSPC
	FSKindSyncFail   = "fs-sync-fail"   // fsync returns EIO
	FSKindReadFail   = "fs-read-fail"   // ReadAt returns EIO
	FSKindRenameFail = "fs-rename-fail" // rename returns EIO
)

// FSConfig is one deterministic filesystem fault schedule. Two
// complementary trigger styles compose:
//
// Op-count triggers fire on the Nth matching operation (1-based)
// across the FaultFS's lifetime — "the 3rd write fails with ENOSPC" —
// which is how the disk-chaos matrix walks a fault across every commit
// point of a store, the way the crash matrix walks SIGKILL across
// commits. Zero disables a trigger.
//
// Rate triggers fire probabilistically, but deterministically: the
// decision is a pure function of (seed, fault kind, operation ordinal),
// the same FNV-roll idiom as the prover's fault schedule, so a failing
// seed replays identically.
//
// Sticky, when set, makes a fired write/sync fault permanent — every
// later write/sync on any file fails too, modelling a genuinely full
// or dead disk rather than a transient hiccup.
type FSConfig struct {
	Seed int64

	// Op-count triggers (1-based ordinal of the matching op; 0 = off).
	FailWriteAfter  int64 // Nth Write returns ENOSPC writing nothing
	ShortWriteAfter int64 // Nth Write persists half the bytes, then ENOSPC
	FailSyncAfter   int64 // Nth Sync returns EIO (bytes already buffered)
	FailReadAfter   int64 // Nth ReadAt returns EIO
	FailRenameAfter int64 // Nth Rename returns EIO

	// Rate triggers in [0, 1]; rolled per matching op ordinal.
	WriteFailRate  float64
	ShortWriteRate float64
	SyncFailRate   float64
	ReadFailRate   float64
	RenameFailRate float64

	// Sticky makes the first fired write/sync fault permanent.
	Sticky bool

	// PathFilter, when set, scopes faults to files whose base name
	// matches (e.g. "ledger.predabs"); other files see a clean disk.
	// Rename faults match either path's base name.
	PathFilter string
}

// FaultFS wraps a checkpoint.FS with the deterministic fault schedule
// cfg describes. It is the disk-level sibling of the prover's fault
// injector: the chaos matrix threads it through every durable store
// (journal, ledger, events, fleet ledger, cache) and asserts the owner
// degrades soundly — keeps serving, never crashes, never flips a
// verdict — exactly as it must under SIGKILL.
type FaultFS struct {
	inner checkpoint.FS
	cfg   FSConfig

	mu      sync.Mutex
	writes  int64
	syncs   int64
	reads   int64
	renames int64
	stuck   bool // a sticky write/sync fault has fired

	injected map[string]int64
}

var _ checkpoint.FS = (*FaultFS)(nil)

// NewFS wraps inner (nil = the real filesystem) with the fault
// schedule cfg describes.
func NewFS(inner checkpoint.FS, cfg FSConfig) *FaultFS {
	if inner == nil {
		inner = checkpoint.OSFS()
	}
	return &FaultFS{inner: inner, cfg: cfg, injected: map[string]int64{}}
}

// Injected reports how many faults of each kind fired.
func (ffs *FaultFS) Injected() map[string]int64 {
	ffs.mu.Lock()
	defer ffs.mu.Unlock()
	out := make(map[string]int64, len(ffs.injected))
	for k, v := range ffs.injected {
		out[k] = v
	}
	return out
}

// InjectedTotal sums all fired filesystem faults.
func (ffs *FaultFS) InjectedTotal() int64 {
	ffs.mu.Lock()
	defer ffs.mu.Unlock()
	var n int64
	for _, v := range ffs.injected {
		n += v
	}
	return n
}

// match reports whether path is in scope for fault injection.
func (ffs *FaultFS) match(path string) bool {
	return ffs.cfg.PathFilter == "" || filepath.Base(path) == ffs.cfg.PathFilter
}

// fire records one injected fault. Caller holds ffs.mu.
func (ffs *FaultFS) fire(kind string, sticky bool) {
	ffs.injected[kind]++
	if sticky && ffs.cfg.Sticky {
		ffs.stuck = true
	}
}

// roll hashes (seed, fault kind, op ordinal) into [0, 1) and fires when
// the result falls under rate — the same deterministic idiom as the
// prover injector, so a schedule replays identically across runs.
func (ffs *FaultFS) roll(kind string, ordinal int64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := fnv.New64a()
	var b [16]byte
	s, o := uint64(ffs.cfg.Seed), uint64(ordinal)
	for i := 0; i < 8; i++ {
		b[i] = byte(s >> (8 * i))
		b[8+i] = byte(o >> (8 * i))
	}
	h.Write(b[:8])
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(b[8:])
	return float64(h.Sum64())/math.MaxUint64 < rate
}

// pathErr builds the error a real syscall would surface.
func pathErr(op, path string, errno syscall.Errno) error {
	return &os.PathError{Op: op, Path: path, Err: errno}
}

// OpenFile opens path on the inner filesystem and wraps the handle so
// in-scope writes, syncs and reads run through the fault schedule.
func (ffs *FaultFS) OpenFile(path string, flag int, perm os.FileMode) (checkpoint.File, error) {
	f, err := ffs.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: ffs, path: path, inner: f}, nil
}

// MkdirAll passes through to the inner filesystem.
func (ffs *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return ffs.inner.MkdirAll(path, perm)
}

// Rename fails with EIO on a matching trigger — the fault that aborts
// a compaction at its commit point — and otherwise passes through.
func (ffs *FaultFS) Rename(oldpath, newpath string) error {
	if ffs.match(oldpath) || ffs.match(newpath) {
		ffs.mu.Lock()
		ffs.renames++
		n := ffs.renames
		hit := n == ffs.cfg.FailRenameAfter || ffs.roll(FSKindRenameFail, n, ffs.cfg.RenameFailRate)
		if hit {
			ffs.fire(FSKindRenameFail, false)
		}
		ffs.mu.Unlock()
		if hit {
			return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: syscall.EIO}
		}
	}
	return ffs.inner.Rename(oldpath, newpath)
}

// Remove passes through to the inner filesystem.
func (ffs *FaultFS) Remove(path string) error { return ffs.inner.Remove(path) }

// Stat passes through to the inner filesystem.
func (ffs *FaultFS) Stat(path string) (os.FileInfo, error) { return ffs.inner.Stat(path) }

// faultFile interposes the schedule on one open handle.
type faultFile struct {
	fs    *FaultFS
	path  string
	inner checkpoint.File
}

func (f *faultFile) Write(p []byte) (int, error) {
	if !f.fs.match(f.path) {
		return f.inner.Write(p)
	}
	ffs := f.fs
	ffs.mu.Lock()
	if ffs.stuck {
		ffs.mu.Unlock()
		return 0, pathErr("write", f.path, syscall.ENOSPC)
	}
	ffs.writes++
	n := ffs.writes
	var full, short bool
	switch {
	case n == ffs.cfg.FailWriteAfter || ffs.roll(FSKindWriteFail, n, ffs.cfg.WriteFailRate):
		full = true
		ffs.fire(FSKindWriteFail, true)
	case n == ffs.cfg.ShortWriteAfter || ffs.roll(FSKindShortWrite, n, ffs.cfg.ShortWriteRate):
		short = true
		ffs.fire(FSKindShortWrite, true)
	}
	ffs.mu.Unlock()
	switch {
	case full:
		return 0, pathErr("write", f.path, syscall.ENOSPC)
	case short:
		// Half the bytes reach the device, then the disk is full — the
		// partial write that leaves a torn frame for replay to repair.
		written, _ := f.inner.Write(p[:len(p)/2])
		f.inner.Sync() // make the torn prefix durable, worst case for replay
		return written, pathErr("write", f.path, syscall.ENOSPC)
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if !f.fs.match(f.path) {
		return f.inner.Sync()
	}
	ffs := f.fs
	ffs.mu.Lock()
	if ffs.stuck {
		ffs.mu.Unlock()
		return pathErr("sync", f.path, syscall.EIO)
	}
	ffs.syncs++
	n := ffs.syncs
	hit := n == ffs.cfg.FailSyncAfter || ffs.roll(FSKindSyncFail, n, ffs.cfg.SyncFailRate)
	if hit {
		ffs.fire(FSKindSyncFail, true)
	}
	ffs.mu.Unlock()
	if hit {
		return pathErr("sync", f.path, syscall.EIO)
	}
	return f.inner.Sync()
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if !f.fs.match(f.path) {
		return f.inner.ReadAt(p, off)
	}
	ffs := f.fs
	ffs.mu.Lock()
	ffs.reads++
	n := ffs.reads
	hit := n == ffs.cfg.FailReadAfter || ffs.roll(FSKindReadFail, n, ffs.cfg.ReadFailRate)
	if hit {
		ffs.fire(FSKindReadFail, false)
	}
	ffs.mu.Unlock()
	if hit {
		return 0, pathErr("read", f.path, syscall.EIO)
	}
	return f.inner.ReadAt(p, off)
}

func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	return f.inner.Seek(offset, whence)
}

func (f *faultFile) Truncate(size int64) error { return f.inner.Truncate(size) }
func (f *faultFile) Close() error              { return f.inner.Close() }
