package faultinject_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"predabs/internal/abstract"
	"predabs/internal/faultinject"
	"predabs/internal/prover"
	"predabs/internal/slam"
	"predabs/internal/soundness"
)

// chaosSeeds is the size of the fault-schedule matrix: every seed is a
// distinct deterministic schedule of prover timeouts, spurious failures,
// forced unknowns and latency spikes, replayed against the soundness
// oracle. The acceptance bar for the harness is ≥50 schedules.
const chaosSeeds = 60

// profiles are the fault mixes the matrix cycles through: single-mode
// pressure (pure timeouts, pure failures), mixed low-rate noise, and
// latency-heavy schedules that mostly reorder goroutines.
// Latency rates stay low: sleeps serialize on predicate-heavy subjects
// (a 0.5 rate over mark's ~10^5 queries is half a minute of pure sleep),
// and a few thousand reordering points per run already shake the
// goroutine schedule.
var profiles = []faultinject.Config{
	{TimeoutRate: 0.3},
	{UnknownRate: 0.2, FailureRate: 0.2},
	{LatencyRate: 0.05, TimeoutRate: 0.1},
	{TimeoutRate: 0.05, UnknownRate: 0.05, FailureRate: 0.05, LatencyRate: 0.02},
	{FailureRate: 0.6},
	{TimeoutRate: 0.9},
}

// TestChaosMatrix replays the soundness oracle under chaosSeeds distinct
// fault schedules. Injected faults only ever weaken the abstraction, so
// every concrete execution must stay inside Bebop's reachable sets no
// matter which queries the schedule kills — the tentpole's
// soundness-under-failure guarantee, executed.
func TestChaosMatrix(t *testing.T) {
	subjects := soundness.Subjects()
	var injected atomic.Int64
	for seed := 0; seed < chaosSeeds; seed++ {
		sub := subjects[seed%len(subjects)]
		// Fewer replays per schedule than the baseline suite: breadth
		// across schedules matters more than depth within one.
		sub.Runs = 25
		cfg := profiles[seed%len(profiles)]
		cfg.Seed = int64(seed)
		// Exercise both the sequential and the concurrent cube search.
		opts := abstract.DefaultOptions()
		if seed%2 == 1 {
			opts.Jobs = 4
		}
		t.Run(fmt.Sprintf("seed%02d-%s", seed, sub.Name), func(t *testing.T) {
			t.Parallel()
			fp := faultinject.New(prover.New(), cfg)
			soundness.Check(t, sub, fp, opts)
			injected.Add(fp.InjectedTotal())
		})
	}
	t.Cleanup(func() {
		if n := injected.Load(); n == 0 {
			t.Error("chaos matrix injected zero faults — the harness tested nothing")
		} else {
			t.Logf("chaos matrix: %d faults injected across %d schedules", n, chaosSeeds)
		}
	})
}

// TestChaosSlamNeverVerifiesBuggyProgram pins the end-to-end guarantee:
// whatever queries a fault schedule kills, the weakened pipeline may get
// LESS precise (Unknown, or an error report it cannot fully confirm) but
// never claims a buggy program safe.
func TestChaosSlamNeverVerifiesBuggyProgram(t *testing.T) {
	const buggy = `
void main(int x) {
  if (x > 3) {
    assert(x <= 3);
  }
}
`
	for seed := 0; seed < 24; seed++ {
		cfg := profiles[seed%len(profiles)]
		cfg.Seed = int64(seed)
		scfg := slam.DefaultConfig()
		scfg.Prover = faultinject.New(prover.New(), cfg)
		res, err := slam.Verify(buggy, "main", scfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Outcome == slam.Verified {
			t.Fatalf("seed %d: fault schedule made SLAM verify a buggy program", seed)
		}
	}
}
