// Package faultinject wraps a theorem prover with deterministic,
// seed-driven fault injection: simulated query timeouts, spurious
// "cannot prove" failures, forced unknowns, latency spikes, and (for
// stage-recovery testing) panics.
//
// Every fault decision is a pure function of (seed, fault kind, query
// kind, formula text), so a fault schedule replays identically across
// processes, goroutine schedules and worker counts — the property that
// makes the chaos matrix debuggable: a failing seed is a reproducible
// test case, not a flake.
//
// The injected faults respect the prover soundness contract (see
// prover.Querier): a fault only ever forces the conservative "could not
// prove" answer, never a positive claim. The pipeline treats that answer
// by weakening the abstraction, so ANY fault schedule must leave the
// boolean program a sound over-approximation — which is exactly what the
// chaos tests check against the internal/soundness oracle.
package faultinject

import (
	"context"
	"hash/fnv"
	"math"
	"sync/atomic"
	"time"

	"predabs/internal/form"
	"predabs/internal/prover"
)

// Fault kinds, as reported by Injected.
const (
	// KindTimeout simulates a per-query deadline: the query is abandoned
	// with "could not prove".
	KindTimeout = "timeout"
	// KindUnknown simulates an incomplete decision procedure giving up.
	KindUnknown = "unknown"
	// KindFailure simulates a transient prover failure (crash of an
	// external prover process, I/O error) surfaced as "could not prove".
	KindFailure = "failure"
	// KindLatency injects a delay, then answers normally: the fault that
	// flushes out goroutine-coordination bugs rather than logic bugs.
	KindLatency = "latency"
	// KindPanic crashes the query outright; only the SLAM stage-boundary
	// recovery may observe it. Keep Config.PanicRate zero except in tests
	// that exercise that recovery.
	KindPanic = "panic"
)

// Config sets the per-query fault probabilities (each in [0, 1]) and the
// schedule seed. The rates are independent: timeout is decided first,
// then unknown, then failure, then panic; latency composes with a normal
// answer.
type Config struct {
	Seed        int64
	TimeoutRate float64
	UnknownRate float64
	FailureRate float64
	LatencyRate float64
	// Latency is the injected delay for latency faults (default 50µs:
	// enough to reorder goroutines, cheap enough for big matrices).
	Latency   time.Duration
	PanicRate float64
	// Ctx, when set, bounds latency injection: a cancelled run must not
	// sit out the remaining sleep (a cancellation test at a high latency
	// rate would otherwise serialize on dead queries). Nil means sleeps
	// run to completion.
	Ctx context.Context
}

// Prover wraps an inner Querier with fault injection. It satisfies
// prover.Querier itself, so it can stand in anywhere a prover is
// accepted (slam.Config.Prover, abstract.Abstract, the soundness
// oracle). Prover statistics of the inner prover pass through via the
// optional Calls / CacheHits / SolverTime methods.
type Prover struct {
	Inner prover.Querier
	cfg   Config

	injTimeout atomic.Int64
	injUnknown atomic.Int64
	injFailure atomic.Int64
	injLatency atomic.Int64
	injPanic   atomic.Int64
}

var _ prover.Querier = (*Prover)(nil)

// New wraps inner with the fault schedule cfg describes.
func New(inner prover.Querier, cfg Config) *Prover {
	if cfg.Latency <= 0 {
		cfg.Latency = 50 * time.Microsecond
	}
	return &Prover{Inner: inner, cfg: cfg}
}

// Valid implements prover.Querier. An injected fault forces the sound
// "could not prove" answer (false); otherwise the inner prover decides.
func (p *Prover) Valid(hyp, goal form.Formula) bool {
	key := "valid\x00" + hyp.String() + "\x00" + goal.String()
	if p.fault(key) {
		return false
	}
	return p.Inner.Valid(hyp, goal)
}

// Unsat implements prover.Querier; injected faults force false ("could
// not prove unsatisfiability"), which callers must treat conservatively.
func (p *Prover) Unsat(f form.Formula) bool {
	key := "unsat\x00" + f.String()
	if p.fault(key) {
		return false
	}
	return p.Inner.Unsat(f)
}

// fault rolls the deterministic dice for one query; reports whether the
// answer must degrade to "could not prove".
func (p *Prover) fault(key string) bool {
	if p.roll(KindPanic, key, p.cfg.PanicRate) {
		p.injPanic.Add(1)
		panic("faultinject: injected prover crash")
	}
	if p.roll(KindLatency, key, p.cfg.LatencyRate) {
		p.injLatency.Add(1)
		p.sleep()
	}
	switch {
	case p.roll(KindTimeout, key, p.cfg.TimeoutRate):
		p.injTimeout.Add(1)
	case p.roll(KindUnknown, key, p.cfg.UnknownRate):
		p.injUnknown.Add(1)
	case p.roll(KindFailure, key, p.cfg.FailureRate):
		p.injFailure.Add(1)
	default:
		return false
	}
	return true
}

// sleep injects one latency spike, cut short when the schedule's
// context is cancelled.
func (p *Prover) sleep() {
	if p.cfg.Ctx == nil {
		time.Sleep(p.cfg.Latency)
		return
	}
	t := time.NewTimer(p.cfg.Latency)
	defer t.Stop()
	select {
	case <-t.C:
	case <-p.cfg.Ctx.Done():
	}
}

// roll hashes (seed, fault kind, query key) into [0, 1) and fires when
// the result falls under rate.
func (p *Prover) roll(kind, key string, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := fnv.New64a()
	var seed [8]byte
	s := uint64(p.cfg.Seed)
	for i := 0; i < 8; i++ {
		seed[i] = byte(s >> (8 * i))
	}
	h.Write(seed[:])
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return float64(h.Sum64())/math.MaxUint64 < rate
}

// Injected reports how many faults of each kind fired.
func (p *Prover) Injected() map[string]int64 {
	return map[string]int64{
		KindTimeout: p.injTimeout.Load(),
		KindUnknown: p.injUnknown.Load(),
		KindFailure: p.injFailure.Load(),
		KindLatency: p.injLatency.Load(),
		KindPanic:   p.injPanic.Load(),
	}
}

// InjectedTotal sums the degrading faults (timeout+unknown+failure).
func (p *Prover) InjectedTotal() int64 {
	return p.injTimeout.Load() + p.injUnknown.Load() + p.injFailure.Load()
}

// Calls passes the inner prover's query count through (0 when the inner
// prover does not expose one).
func (p *Prover) Calls() int {
	if s, ok := p.Inner.(interface{ Calls() int }); ok {
		return s.Calls()
	}
	return 0
}

// CacheHits passes the inner prover's cache-hit count through.
func (p *Prover) CacheHits() int {
	if s, ok := p.Inner.(interface{ CacheHits() int }); ok {
		return s.CacheHits()
	}
	return 0
}

// SolverTime passes the inner prover's decision-procedure time through.
func (p *Prover) SolverTime() time.Duration {
	if s, ok := p.Inner.(interface{ SolverTime() time.Duration }); ok {
		return s.SolverTime()
	}
	return 0
}
