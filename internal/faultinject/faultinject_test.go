package faultinject

import (
	"context"
	"testing"
	"time"

	"predabs/internal/form"
	"predabs/internal/prover"
)

func eq(name string, v int64) form.Formula {
	return form.Cmp{Op: form.Eq, X: form.Var{Name: name}, Y: form.Num{V: v}}
}

// queries issues a fixed mix of valid/unsat queries and returns the
// answer vector.
func queries(p *Prover) []bool {
	var out []bool
	for i := int64(0); i < 40; i++ {
		out = append(out, p.Valid(eq("x", i), eq("x", i)))
		out = append(out, p.Unsat(form.MkAnd(eq("y", i), eq("y", i+1))))
	}
	return out
}

func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, TimeoutRate: 0.3, UnknownRate: 0.1, FailureRate: 0.1}
	a := queries(New(prover.New(), cfg))
	b := queries(New(prover.New(), cfg))
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d: run A answered %v, run B %v — schedule not deterministic", i, a[i], b[i])
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	pa := New(prover.New(), Config{Seed: 1, TimeoutRate: 0.5})
	pb := New(prover.New(), Config{Seed: 2, TimeoutRate: 0.5})
	qa, qb := queries(pa), queries(pb)
	if pa.InjectedTotal() == 0 || pb.InjectedTotal() == 0 {
		t.Fatalf("rate 0.5 injected nothing: %d / %d", pa.InjectedTotal(), pb.InjectedTotal())
	}
	same := true
	for i := range qa {
		if qa[i] != qb[i] {
			same = false
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical fault schedules over 80 queries")
	}
}

func TestFaultsNeverForceTrue(t *testing.T) {
	// Rate 1: every query degrades to "could not prove" — even trivially
	// valid ones. The wrapper must never strengthen an answer.
	p := New(prover.New(), Config{Seed: 3, TimeoutRate: 1})
	if p.Valid(form.TrueF{}, form.TrueF{}) {
		t.Error("injected timeout still answered valid=true")
	}
	if p.Unsat(form.MkAnd(eq("x", 1), eq("x", 2))) {
		t.Error("injected timeout still answered unsat=true")
	}
	if got := p.Injected()[KindTimeout]; got != 2 {
		t.Errorf("timeout injections = %d, want 2", got)
	}
}

func TestPanicInjection(t *testing.T) {
	p := New(prover.New(), Config{Seed: 4, PanicRate: 1})
	defer func() {
		if recover() == nil {
			t.Error("PanicRate 1 did not panic")
		}
	}()
	p.Valid(form.TrueF{}, form.TrueF{})
}

// A cancelled run must not sit out injected sleeps: with an hour-long
// latency on every query, only context cancellation can let this test
// finish.
func TestLatencyRespectsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := New(prover.New(), Config{Seed: 6, LatencyRate: 1, Latency: time.Hour, Ctx: ctx})
	done := make(chan bool, 1)
	go func() { done <- p.Valid(form.TrueF{}, form.TrueF{}) }()
	select {
	case v := <-done:
		if !v {
			t.Error("a latency fault must not change the answer")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("latency injection ignored the cancelled context")
	}
	if got := p.Injected()[KindLatency]; got != 1 {
		t.Errorf("latency injections = %d, want 1", got)
	}
}

func TestStatsPassThrough(t *testing.T) {
	inner := prover.New()
	p := New(inner, Config{Seed: 5})
	p.Valid(form.TrueF{}, form.TrueF{})
	if p.Calls() != inner.Calls() || p.Calls() == 0 {
		t.Errorf("Calls passthrough: wrapper %d inner %d", p.Calls(), inner.Calls())
	}
}
