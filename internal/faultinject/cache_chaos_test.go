// Cache-chaos harness: the shared prover cache (predcached) must be a
// pure accelerator — every failure mode degrades to exactly the
// local-only behavior. Each cell runs the real slam binary against a
// real predabsd -cache process (or a hostile stand-in) and asserts the
// verdict stdout is byte-identical to a cache-off reference run: cache
// warm, cache killed mid-run, cache never there, cache restarted over
// a torn/corrupted store, cache answering slower than the lookup
// budget, cache answering garbage, and a poisoned cache under verify
// mode (detected, quarantined, never trusted).
//
// Run via `make cache-chaos`.
package faultinject_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"predabs/internal/cacheserv"
	"predabs/internal/corpus"
	"predabs/internal/prover"
	"predabs/internal/trace"
)

// startCache launches a real predabsd -cache process over dataDir and
// returns it; callers stop it via stopProc (or kill it mid-run).
func startCache(t *testing.T, dataDir string) *daemonProc {
	t.Helper()
	return startProc(t, nil, "-addr", "127.0.0.1:0", "-data", dataDir, "-cache", "-v")
}

// remoteStats is the "remote cache: ..." stderr line a -stats run
// prints, parsed back into numbers.
type remoteStats struct {
	lookups, hits, misses, fallbacks       int64
	published, dropped, verified, mismatch int64
	quarantined                            bool
}

// parseRemoteStats extracts the remote-cache stats line from a -stats
// run's stderr; ok is false when the run had no remote tier.
func parseRemoteStats(t *testing.T, stderr string) (remoteStats, bool) {
	t.Helper()
	var s remoteStats
	for _, line := range bytes.Split([]byte(stderr), []byte("\n")) {
		n, _ := fmt.Sscanf(string(line),
			"remote cache: lookups %d, hits %d, misses %d, fallbacks %d, published %d, dropped %d, verified %d, mismatches %d, quarantined %t",
			&s.lookups, &s.hits, &s.misses, &s.fallbacks,
			&s.published, &s.dropped, &s.verified, &s.mismatch, &s.quarantined)
		if n >= 9 {
			return s, true
		}
	}
	return s, false
}

// cachedRun executes slam over drv with the remote tier pointed at
// cacheURL (plus extra flags), always with -stats so the remote stats
// line is available.
func cachedRun(t *testing.T, drv corpus.Program, cacheURL string, extra ...string) slamRun {
	t.Helper()
	dir := t.TempDir()
	src := writeFile(t, dir, drv.Name+".c", drv.Source)
	spec := writeFile(t, dir, drv.Name+".slic", drv.Spec)
	args := append([]string{"-spec", spec, "-entry", drv.Entry, "-stats", "-cache-url", cacheURL}, extra...)
	args = append(args, src)
	return runSlam(t, slamBin(t), nil, args...)
}

// assertIdentical pins the byte-identity contract for one cell: the
// cached run's stdout and exit code match the cache-off reference
// exactly.
func assertIdentical(t *testing.T, cell string, ref, got slamRun) {
	t.Helper()
	if got.killed {
		t.Fatalf("%s: slam run was killed", cell)
	}
	if got.stdout != ref.stdout || got.code != ref.code {
		t.Errorf("%s: cached run diverged from cache-off reference\n--- reference (exit %d)\n%s\n--- cached (exit %d)\n%s\nstderr:\n%s",
			cell, ref.code, ref.stdout, got.code, got.stdout, got.stderr)
	}
}

// TestCacheChaosHealthyWarmByteIdentical is the happy-path cell: a
// cold run populates the cache, a second fresh run over the same
// program hits it, and both verdicts are byte-identical to a cache-off
// run. The warm run must actually consume remote hits — otherwise this
// cell would pass with the tier silently inert.
func TestCacheChaosHealthyWarmByteIdentical(t *testing.T) {
	cache := startCache(t, t.TempDir())
	t.Cleanup(func() { stopProc(t, cache) })
	for _, drv := range []corpus.Program{corpus.Drivers()[0], corpus.Drivers()[1]} {
		drv := drv
		t.Run(drv.Name, func(t *testing.T) {
			ref := refRun(t, drv)

			cold := cachedRun(t, drv, cache.base)
			assertIdentical(t, "cold", ref, cold)
			cs, ok := parseRemoteStats(t, cold.stderr)
			if !ok {
				t.Fatalf("cold run printed no remote cache stats:\n%s", cold.stderr)
			}
			if cs.published == 0 {
				t.Errorf("cold run published no verdicts (stats %+v)", cs)
			}

			traceOut := filepath.Join(t.TempDir(), "trace.jsonl")
			warm := cachedRun(t, drv, cache.base, "-trace-out", traceOut)
			assertIdentical(t, "warm", ref, warm)
			ws, ok := parseRemoteStats(t, warm.stderr)
			if !ok {
				t.Fatalf("warm run printed no remote cache stats:\n%s", warm.stderr)
			}
			if ws.hits == 0 {
				t.Errorf("warm run got no remote hits — the tier is inert (stats %+v)", ws)
			}
			if ws.quarantined {
				t.Errorf("healthy cache ended quarantined (stats %+v)", ws)
			}

			// The tier's cache.lookup / cache.flush spans ride the run's
			// trace and must validate under the closed taxonomy — the
			// same check cmd/tracelint applies.
			raw, err := os.ReadFile(traceOut)
			if err != nil {
				t.Fatalf("trace artifact: %v", err)
			}
			if _, err := trace.Validate(bytes.NewReader(raw)); err != nil {
				t.Errorf("warm run trace fails taxonomy validation: %v", err)
			}
			if !bytes.Contains(raw, []byte(`"cat":"cache","name":"lookup"`)) &&
				!bytes.Contains(raw, []byte(`"cat": "cache"`)) {
				t.Errorf("warm run trace has no cache spans")
			}
		})
	}
}

// TestCacheChaosDeadCacheByteIdentical: the configured cache URL has
// nothing listening at all. Every lookup fails fast, the breaker opens
// after its threshold, and the run is byte-identical.
func TestCacheChaosDeadCacheByteIdentical(t *testing.T) {
	drv := corpus.Drivers()[1]
	ref := refRun(t, drv)
	got := cachedRun(t, drv, "http://127.0.0.1:1") // reserved port: connection refused
	assertIdentical(t, "dead-url", ref, got)
	s, ok := parseRemoteStats(t, got.stderr)
	if !ok {
		t.Fatalf("no remote cache stats:\n%s", got.stderr)
	}
	if s.fallbacks == 0 {
		t.Errorf("dead cache produced no fallbacks (stats %+v)", s)
	}
	if s.hits != 0 {
		t.Errorf("dead cache produced hits (stats %+v)", s)
	}
}

// TestCacheChaosKillMidRunByteIdentical: the cache process is
// SIGKILLed while a slam run is using it. In-flight lookups fail the
// breaker, publishes are dropped, and the verdict is byte-identical.
func TestCacheChaosKillMidRunByteIdentical(t *testing.T) {
	drv := corpus.Drivers()[0]
	ref := refRun(t, drv)

	dataDir := t.TempDir()
	cache := startCache(t, dataDir)
	// Warm it so the doomed run has real hits to lose mid-stream.
	warmup := cachedRun(t, drv, cache.base)
	assertIdentical(t, "kill-warmup", ref, warmup)

	done := make(chan struct{})
	go func() {
		// Land the SIGKILL inside the run's prover phase, not before
		// slam even starts.
		time.Sleep(30 * time.Millisecond)
		cache.cmd.Process.Signal(syscall.SIGKILL)
		close(done)
	}()
	got := cachedRun(t, drv, cache.base)
	<-done
	cache.cmd.Wait()
	assertIdentical(t, "kill-mid-run", ref, got)

	// The store's framed log absorbs the SIGKILL: a restart over the
	// same data dir replays the surviving prefix and serves hits again.
	cache2 := startCache(t, dataDir)
	t.Cleanup(func() { stopProc(t, cache2) })
	again := cachedRun(t, drv, cache2.base)
	assertIdentical(t, "restart-same-dir", ref, again)
	s, ok := parseRemoteStats(t, again.stderr)
	if !ok {
		t.Fatalf("no remote cache stats:\n%s", again.stderr)
	}
	if s.hits == 0 {
		t.Errorf("restarted cache served no hits (stats %+v)", s)
	}
}

// TestCacheChaosCorruptStoreByteIdentical: garbage is appended to the
// cache's durable store (a torn final frame), the cache restarts over
// it, repairs the tail, and keeps serving the intact prefix — with
// verdicts byte-identical throughout.
func TestCacheChaosCorruptStoreByteIdentical(t *testing.T) {
	drv := corpus.Drivers()[1]
	ref := refRun(t, drv)

	dataDir := t.TempDir()
	cache := startCache(t, dataDir)
	warmup := cachedRun(t, drv, cache.base)
	assertIdentical(t, "corrupt-warmup", ref, warmup)
	stopProc(t, cache)

	path := filepath.Join(dataDir, cacheserv.FileName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open store file: %v", err)
	}
	f.Write([]byte("\x13\x37mid-append-death-garbage\x00\xff"))
	f.Close()

	cache2 := startCache(t, dataDir)
	t.Cleanup(func() { stopProc(t, cache2) })
	got := cachedRun(t, drv, cache2.base)
	assertIdentical(t, "corrupt-restart", ref, got)
	s, ok := parseRemoteStats(t, got.stderr)
	if !ok {
		t.Fatalf("no remote cache stats:\n%s", got.stderr)
	}
	if s.hits == 0 {
		t.Errorf("repaired cache served no hits (stats %+v)", s)
	}
}

// TestCacheChaosSlowCacheByteIdentical: the cache answers far slower
// than the per-lookup budget. Every lookup times out into a fallback
// (the run never blocks on the cache) and the verdict is
// byte-identical.
func TestCacheChaosSlowCacheByteIdentical(t *testing.T) {
	drv := corpus.Drivers()[1]
	ref := refRun(t, drv)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(200 * time.Millisecond) // ≫ the 5ms lookup budget
		fmt.Fprintln(w, `{"entries":[]}`)
	}))
	defer slow.Close()
	start := time.Now()
	got := cachedRun(t, drv, slow.URL)
	elapsed := time.Since(start)
	assertIdentical(t, "slow-cache", ref, got)
	s, ok := parseRemoteStats(t, got.stderr)
	if !ok {
		t.Fatalf("no remote cache stats:\n%s", got.stderr)
	}
	if s.fallbacks == 0 {
		t.Errorf("slow cache produced no budget fallbacks (stats %+v)", s)
	}
	// The breaker bounds total exposure: a few lookup budgets, not one
	// 200ms stall per prover query. Allow generous slack for the run
	// itself; the pathological no-breaker case would be tens of seconds.
	if elapsed > 30*time.Second {
		t.Errorf("slow cache stalled the run for %v", elapsed)
	}
}

// TestCacheChaosGarbageResponsesByteIdentical: the cache answers
// HTTP 200 with non-JSON garbage. Every lookup is a miss, publishes
// fail harmlessly, and the verdict is byte-identical.
func TestCacheChaosGarbageResponsesByteIdentical(t *testing.T) {
	drv := corpus.Drivers()[1]
	ref := refRun(t, drv)
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("\x00\xffthis is not json{{{"))
	}))
	defer garbage.Close()
	got := cachedRun(t, drv, garbage.URL)
	assertIdentical(t, "garbage", ref, got)
	s, ok := parseRemoteStats(t, got.stderr)
	if !ok {
		t.Fatalf("no remote cache stats:\n%s", got.stderr)
	}
	if s.hits != 0 {
		t.Errorf("garbage responses decoded into hits (stats %+v)", s)
	}
}

// TestCacheChaosPoisonedVerifyQuarantines is the trust cell: a cache
// whose entries have all been flipped to the opposite verdict, run
// under -cache-verify. Sampled remote hits are recomputed locally, the
// first disagreement quarantines the tier, and the verdict stays
// byte-identical — the poison is detected, never believed.
func TestCacheChaosPoisonedVerifyQuarantines(t *testing.T) {
	drv := corpus.Drivers()[0]
	ref := refRun(t, drv)

	// Harvest honest verdicts from a warmed cache...
	honest := startCache(t, t.TempDir())
	warmup := cachedRun(t, drv, honest.base)
	assertIdentical(t, "poison-warmup", ref, warmup)
	parts := struct {
		Partitions []string `json:"partitions"`
	}{}
	getJSON(t, honest.base+"/v1/partitions", &parts)
	if len(parts.Partitions) == 0 {
		t.Fatal("warmed cache has no partitions to poison")
	}
	type snapshot struct {
		Entries []prover.CacheEntry `json:"entries"`
	}
	poisoned := startCache(t, t.TempDir())
	t.Cleanup(func() { stopProc(t, poisoned) })
	total := 0
	for _, p := range parts.Partitions {
		var snap snapshot
		getJSON(t, honest.base+"/v1/snapshot?partition="+p, &snap)
		for i := range snap.Entries {
			snap.Entries[i].Val = !snap.Entries[i].Val // ...flip every one...
		}
		total += len(snap.Entries)
		body, _ := json.Marshal(map[string]any{"partition": p, "entries": snap.Entries})
		resp, err := http.Post(poisoned.base+"/v1/publish", "application/json", bytes.NewReader(body))
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("publishing poison: %v (HTTP %v)", err, resp)
		}
		resp.Body.Close()
	}
	stopProc(t, honest)
	if total == 0 {
		t.Fatal("nothing to poison")
	}

	// ...and run against the poisoned cache with verify sampling every
	// key (-cache-verify; sample density is the tier default, so force
	// determinism by checking the outcome, not which key tripped first).
	got := cachedRun(t, drv, poisoned.base, "-cache-verify")
	assertIdentical(t, "poisoned-verify", ref, got)
	s, ok := parseRemoteStats(t, got.stderr)
	if !ok {
		t.Fatalf("no remote cache stats:\n%s", got.stderr)
	}
	if s.mismatch == 0 || !s.quarantined {
		t.Errorf("poisoned cache was not caught: mismatches=%d quarantined=%t (stats %+v)",
			s.mismatch, s.quarantined, s)
	}
}

// getJSON fetches url and decodes the JSON body into out.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}
