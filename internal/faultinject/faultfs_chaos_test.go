// Disk-chaos tests for the fault-injecting filesystem itself: the
// schedule must be a pure function of its config (a failing seed
// replays identically), sticky faults must model a dead disk across
// every file, and the path filter must scope faults to one store.
package faultinject

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"predabs/internal/checkpoint"
)

// driveOps runs a fixed op script — writes, syncs, reads and renames
// across two files — recording which ops failed. The script is what
// makes two FaultFS instances comparable.
func driveOps(t *testing.T, ffs *FaultFS, dir string) string {
	t.Helper()
	var trace []string
	a, err := ffs.OpenFile(filepath.Join(dir, "a.log"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ffs.OpenFile(filepath.Join(dir, "b.log"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789abcdef")
	for i := 0; i < 10; i++ {
		f, name := a, "a"
		if i%2 == 1 {
			f, name = b, "b"
		}
		if _, err := f.Write(payload); err != nil {
			trace = append(trace, fmt.Sprintf("w%d:%s", i, name))
		}
		if err := f.Sync(); err != nil {
			trace = append(trace, fmt.Sprintf("s%d:%s", i, name))
		}
		buf := make([]byte, 4)
		if _, err := f.ReadAt(buf, 0); err != nil {
			trace = append(trace, fmt.Sprintf("r%d:%s", i, name))
		}
	}
	a.Close()
	b.Close()
	if err := ffs.Rename(filepath.Join(dir, "a.log"), filepath.Join(dir, "a2.log")); err != nil {
		trace = append(trace, "mv")
	}
	return fmt.Sprint(trace)
}

// TestDiskChaosFaultScheduleDeterminism replays the same seeded rate
// schedule twice: the failed-op trace and the per-kind fire counts must
// be identical, and across seeds the schedules must actually vary.
func TestDiskChaosFaultScheduleDeterminism(t *testing.T) {
	traces := map[string]bool{}
	for seed := int64(1); seed <= 8; seed++ {
		cfg := FSConfig{
			Seed:           seed,
			WriteFailRate:  0.2,
			ShortWriteRate: 0.1,
			SyncFailRate:   0.2,
			ReadFailRate:   0.2,
			RenameFailRate: 0.5,
		}
		ffs1 := NewFS(nil, cfg)
		ffs2 := NewFS(nil, cfg)
		t1 := driveOps(t, ffs1, t.TempDir())
		t2 := driveOps(t, ffs2, t.TempDir())
		if t1 != t2 {
			t.Fatalf("seed %d not deterministic:\n  %s\n  %s", seed, t1, t2)
		}
		if fmt.Sprint(ffs1.Injected()) != fmt.Sprint(ffs2.Injected()) {
			t.Fatalf("seed %d fire counts diverged: %v vs %v", seed, ffs1.Injected(), ffs2.Injected())
		}
		traces[t1] = true
	}
	if len(traces) < 2 {
		t.Fatalf("8 seeds produced %d distinct schedules; the roll ignores the seed", len(traces))
	}
}

// TestDiskChaosStickyFaultPoisonsAllWrites pins the dead-disk model: a
// sticky write fault on one file fails every later write and sync on
// every file, while reads pass through untouched.
func TestDiskChaosStickyFaultPoisonsAllWrites(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFS(nil, FSConfig{FailWriteAfter: 1, Sticky: true})
	a, _ := ffs.OpenFile(filepath.Join(dir, "a.log"), os.O_RDWR|os.O_CREATE, 0o644)
	b, _ := ffs.OpenFile(filepath.Join(dir, "b.log"), os.O_RDWR|os.O_CREATE, 0o644)
	defer a.Close()
	defer b.Close()
	if _, err := a.Write([]byte("x")); err == nil {
		t.Fatal("scheduled write fault did not fire")
	}
	if _, err := b.Write([]byte("x")); err == nil {
		t.Fatal("sticky fault did not poison the other file's writes")
	}
	if err := b.Sync(); err == nil {
		t.Fatal("sticky fault did not poison syncs")
	}
	if _, err := b.ReadAt(make([]byte, 1), 0); err == nil {
		t.Fatal("read of an empty file should EOF") // sanity: reads reach the device
	} else if ffs.Injected()[FSKindReadFail] != 0 {
		t.Fatalf("sticky write fault bled into reads: %v", ffs.Injected())
	}
	if got := ffs.Injected()[FSKindWriteFail]; got != 1 {
		t.Fatalf("sticky repeats recorded as new fires: %d", got)
	}
}

// TestDiskChaosPathFilterScopesFaults checks the blast radius: with a
// filter on one store file, the other store sees a clean disk.
func TestDiskChaosPathFilterScopesFaults(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFS(nil, FSConfig{FailWriteAfter: 1, Sticky: true, PathFilter: "ledger.predabs"})
	clean, err := checkpoint.OpenLogFS(ffs, filepath.Join(dir, "events.predabs"), "EVT\x00", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	if err := clean.Append([]byte("fine")); err != nil {
		t.Fatalf("out-of-scope store hit the fault: %v", err)
	}
	if _, err := checkpoint.OpenLogFS(ffs, filepath.Join(dir, "ledger.predabs"), "LGR\x00", nil); err == nil {
		t.Fatal("in-scope store never saw the fault")
	}
	if err := clean.Append([]byte("still fine")); err != nil {
		t.Fatalf("sticky in-scope fault leaked past the path filter: %v", err)
	}
}
