// Fleet-chaos harness: the router-level counterpart of the serve-chaos
// matrix. Real predabsd backends and a real predabsd -frontend run as
// separate processes; backends are SIGKILLed while holding dispatched
// jobs, and the frontend is SIGKILLed at every ledger commit point
// (admit, dispatch, lease, adopt, verdict) via its deterministic
// PREDABS_FLEET_CRASH hook. The invariants pinned at every cell:
// verdicts byte-identical to direct slam runs, identical submissions
// collapsed onto one backend attempt, and no job ever lost or
// double-credited across any kill.
//
// Run via `make fleet-chaos`.
package faultinject_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"predabs/internal/corpus"
	"predabs/internal/fleet"
	"predabs/internal/server"
)

// startBackend launches a backend predabsd with fast deterministic
// retries, as the serve-chaos suite tunes them.
func startBackend(t *testing.T, extraArgs ...string) *daemonProc {
	t.Helper()
	d := startDaemon(t, t.TempDir(), append([]string{
		"-retries", "2", "-retry-base", "2ms", "-retry-max", "20ms",
	}, extraArgs...)...)
	t.Cleanup(func() { stopProc(t, d) })
	return d
}

// startFrontendProc launches predabsd -frontend over the given backend
// base URLs, with crashEnv injected into its environment (nil for a
// frontend that is not scheduled to die).
func startFrontendProc(t *testing.T, dataDir string, crashEnv []string, backends ...string) *daemonProc {
	t.Helper()
	return startProc(t, crashEnv,
		"-addr", "127.0.0.1:0", "-data", dataDir, "-v",
		"-frontend", strings.Join(backends, ","),
		"-lease-ttl", "1s", "-poll-interval", "25ms",
	)
}

// runDoomedFrontend launches a frontend whose crash hook fires during
// startup replay (e.g. an adopt commit), so it may die before printing
// its readiness line; it just waits for the scheduled death and
// asserts the crash hook — not some startup failure — was the cause.
func runDoomedFrontend(t *testing.T, dataDir string, crashEnv []string, backends ...string) {
	t.Helper()
	cmd := exec.Command(predabsdBin(t),
		"-addr", "127.0.0.1:0", "-data", dataDir, "-v",
		"-frontend", strings.Join(backends, ","),
		"-lease-ttl", "1s", "-poll-interval", "25ms",
	)
	cmd.Env = append(os.Environ(), crashEnv...)
	var errb bytes.Buffer
	cmd.Stderr = &errb
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		<-done
		t.Fatalf("doomed frontend (%v) never hit its crash commit\nstderr:\n%s", crashEnv, errb.String())
	}
	ws, ok := cmd.ProcessState.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("doomed frontend (%v) exited without firing its crash hook: %v\nstderr:\n%s",
			crashEnv, cmd.ProcessState, errb.String())
	}
}

// stopProc terminates a process that may already be dead.
func stopProc(t *testing.T, d *daemonProc) {
	t.Helper()
	d.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { d.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		d.cmd.Process.Kill()
		<-done
	}
}

// postJob submits a spec; it tolerates transport errors (a frontend
// scheduled to die at the admit commit kills itself before answering)
// and returns the assigned ID when one arrived.
func postJob(t *testing.T, base string, spec server.JobSpec) (string, error) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted || out.ID == "" {
		return "", fmt.Errorf("submit: HTTP %d, id %q", resp.StatusCode, out.ID)
	}
	return out.ID, nil
}

// listJobs fetches every job summary from a frontend or backend.
func listJobs(t *testing.T, base string) []server.JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Jobs []server.JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Jobs
}

// awaitHTTP polls a job over HTTP until it reaches a wanted state.
func awaitHTTP(t *testing.T, d *daemonProc, id, want string, timeout time.Duration) server.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last server.JobStatus
	for time.Now().Before(deadline) {
		st, ok := d.status(t, id)
		if ok {
			last = st
			if st.State == want {
				return st
			}
			if st.State == server.StateDone || st.State == server.StateFailed {
				t.Fatalf("job %s reached terminal %q (outcome %q, error %q), want %q\nstderr:\n%s",
					id, st.State, st.Outcome, st.Error, want, d.errb.String())
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %q, want %q\nstderr:\n%s", id, last.State, want, d.errb.String())
	return last
}

// fleetEvents fetches and schema-validates a frontend job's event
// stream — the same checker cmd/tracelint -fleet runs — and returns
// the decoded records.
func fleetEvents(t *testing.T, base, id string) []fleet.FleetEvent {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s/jobs/%s/events: HTTP %d (%v)", base, id, resp.StatusCode, err)
	}
	if _, err := fleet.ValidateEvents(bytes.NewReader(body)); err != nil {
		t.Fatalf("job %s fleet event stream invalid: %v\n%s", id, err, body)
	}
	var out []fleet.FleetEvent
	for _, line := range bytes.Split(body, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev fleet.FleetEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatal(err)
		}
		out = append(out, ev)
	}
	return out
}

func eventTypeSeq(evs []fleet.FleetEvent) string {
	var types []string
	for _, ev := range evs {
		types = append(types, ev.Type)
	}
	return strings.Join(types, " ")
}

// countVerdicts asserts the no-double-credit invariant: exactly one
// verdict record per job stream.
func countVerdicts(t *testing.T, evs []fleet.FleetEvent, label string) {
	t.Helper()
	n := 0
	for _, ev := range evs {
		if ev.Type == fleet.RecVerdict {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%s: %d verdict records, want exactly 1 (no lost or double-credited verdicts)", label, n)
	}
}

// refRun computes the direct uninterrupted slam reference for a corpus
// driver — the byte-identical oracle every fleet verdict is held to.
func refRun(t *testing.T, drv corpus.Program) slamRun {
	t.Helper()
	dir := t.TempDir()
	src := writeFile(t, dir, drv.Name+".c", drv.Source)
	spec := writeFile(t, dir, drv.Name+".slic", drv.Spec)
	ref := runSlam(t, slamBin(t), nil, "-spec", spec, "-entry", drv.Entry, src)
	if ref.killed {
		t.Fatalf("%s: reference run was killed", drv.Name)
	}
	return ref
}

// clogVictim wedges a backend's single worker slot deterministically:
// a directly submitted job whose worker dies at its first checkpoint
// commit, on a daemon whose retry backoff is effectively infinite. The
// supervisor parks in the backoff holding the only worker slot — no
// live worker process to leak — so every job the frontend routes to
// this backend stays queued there until the backend is killed.
func clogVictim(t *testing.T, victim *daemonProc) {
	t.Helper()
	drv := corpus.Drivers()[1]
	id, err := postJob(t, victim.base, server.JobSpec{
		Source: drv.Source, Spec: drv.Spec, Entry: drv.Entry,
		Env: crashEnv(1, false),
	})
	if err != nil {
		t.Fatalf("clog submit: %v", err)
	}
	awaitHTTP(t, victim, id, server.StateRetrying, 30*time.Second)
}

// TestFleetChaosBackendKillFailoverByteIdentical is the backend half
// of the kill matrix: jobs dispatched to a backend that is SIGKILLed
// mid-flight must fail over — lease expiry, re-dispatch — and finish
// with verdicts byte-identical to direct slam runs.
func TestFleetChaosBackendKillFailoverByteIdentical(t *testing.T) {
	drivers := corpus.Drivers()
	specs := []corpus.Program{drivers[1], drivers[2], drivers[3]} // ioctl, openclos, srdriver
	refs := make([]slamRun, len(specs))
	for i, drv := range specs {
		refs[i] = refRun(t, drv)
	}

	// The victim's one worker slot is clogged, so frontend jobs routed
	// to it queue behind the clog until the SIGKILL.
	victim := startDaemon(t, t.TempDir(), "-retries", "5", "-retry-base", "10m", "-retry-max", "1h")
	victimDead := false
	t.Cleanup(func() {
		if !victimDead {
			stopProc(t, victim)
		}
	})
	clogVictim(t, victim)
	survivor := startBackend(t)

	fe := startFrontendProc(t, t.TempDir(), nil, victim.base, survivor.base)
	t.Cleanup(func() { stopProc(t, fe) })

	ids := make([]string, len(specs))
	for i, drv := range specs {
		id, err := postJob(t, fe.base, server.JobSpec{Source: drv.Source, Spec: drv.Spec, Entry: drv.Entry})
		if err != nil {
			t.Fatalf("%s: %v", drv.Name, err)
		}
		ids[i] = id
	}

	// Wait until every job is dispatched and at least one is parked on
	// the victim, then kill it without ceremony.
	deadline := time.Now().Add(30 * time.Second)
	for {
		dispatched, onVictim := 0, 0
		for _, id := range ids {
			if st, ok := fe.status(t, id); ok {
				if st.Backend != "" {
					dispatched++
				}
				if st.Backend == victim.base && st.State != server.StateDone {
					onVictim++
				}
			}
		}
		if dispatched == len(ids) && onVictim > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never spread across the fleet (dispatched %d, on victim %d)\nstderr:\n%s",
				dispatched, onVictim, fe.errb.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	victim.cmd.Process.Signal(syscall.SIGKILL)
	victim.cmd.Wait()
	victimDead = true

	failovers := 0
	for i, id := range ids {
		st := awaitHTTP(t, fe, id, server.StateDone, 60*time.Second)
		if st.Stdout != refs[i].stdout || st.ExitCode != refs[i].code {
			t.Errorf("%s (job %s): fleet verdict not byte-identical to direct run (exit %d, want %d):\n got: %q\nwant: %q",
				specs[i].Name, id, st.ExitCode, refs[i].code, st.Stdout, refs[i].stdout)
		}
		if st.Backend != survivor.base && st.Backend != victim.base {
			t.Errorf("%s: verdict credited to unknown backend %q", specs[i].Name, st.Backend)
		}
		evs := fleetEvents(t, fe.base, id)
		countVerdicts(t, evs, specs[i].Name)
		for _, ev := range evs {
			if ev.Type == fleet.RecLease {
				failovers++
			}
		}
	}
	if failovers == 0 {
		t.Fatal("no job failed over; the backend kill was inert")
	}
	t.Logf("backend kill matrix: %d jobs, %d failovers", len(ids), failovers)
}

// TestFleetChaosFrontendKillAtEveryCommit is the frontend half of the
// kill matrix: the router is SIGKILLed immediately after the admit,
// dispatch, adopt and verdict ledger commits (the lease commit has its
// own failover scenario below). After each kill a restarted frontend
// over the same ledger must recover the job — never losing it, never
// running it twice, never crediting two verdicts — and deliver the
// byte-identical direct-run verdict.
func TestFleetChaosFrontendKillAtEveryCommit(t *testing.T) {
	drv := corpus.Drivers()[1] // ioctl: verified, fast
	ref := refRun(t, drv)
	spec := server.JobSpec{Source: drv.Source, Spec: drv.Spec, Entry: drv.Entry}

	t.Run("admit", func(t *testing.T) {
		backend := startBackend(t)
		feDir := t.TempDir()
		fe1 := startFrontendProc(t, feDir, []string{fleet.CrashEnv + "=admit:1"}, backend.base)
		if _, err := postJob(t, fe1.base, spec); err == nil {
			t.Fatal("submit survived a frontend scheduled to die at the admit commit")
		}
		fe1.cmd.Wait()

		// The admit record was durable before the response: the restarted
		// frontend must know the job even though the client never got an ID.
		fe2 := startFrontendProc(t, feDir, nil, backend.base)
		t.Cleanup(func() { stopProc(t, fe2) })
		jobs := listJobs(t, fe2.base)
		if len(jobs) != 1 {
			t.Fatalf("restarted frontend lists %d jobs, want the 1 durably admitted", len(jobs))
		}
		st := awaitHTTP(t, fe2, jobs[0].ID, server.StateDone, 60*time.Second)
		if st.Stdout != ref.stdout || st.ExitCode != ref.code {
			t.Fatalf("verdict not byte-identical after admit-commit kill:\n got: %q\nwant: %q", st.Stdout, ref.stdout)
		}
		countVerdicts(t, fleetEvents(t, fe2.base, jobs[0].ID), "admit-kill job")
	})

	t.Run("dispatch-then-adopt", func(t *testing.T) {
		backend := startBackend(t)
		feDir := t.TempDir()
		fe1 := startFrontendProc(t, feDir, []string{fleet.CrashEnv + "=dispatch:1"}, backend.base)
		postJob(t, fe1.base, spec) // the 202 races the dispatch-commit kill; either outcome is fine
		fe1.cmd.Wait()

		// The backend received the job before the dispatch record was
		// committed; it finishes the work while the frontend is down.
		if n := len(listJobs(t, backend.base)); n != 1 {
			t.Fatalf("backend holds %d jobs after dispatch-commit kill, want 1", n)
		}

		// Second kill in the chain: the restarted frontend adopts the
		// surviving backend job and dies right after the adopt commit —
		// possibly before it even started listening.
		runDoomedFrontend(t, feDir, []string{fleet.CrashEnv + "=adopt:1"}, backend.base)

		fe3 := startFrontendProc(t, feDir, nil, backend.base)
		t.Cleanup(func() { stopProc(t, fe3) })
		jobs := listJobs(t, fe3.base)
		if len(jobs) != 1 {
			t.Fatalf("frontend lists %d jobs after two kills, want 1", len(jobs))
		}
		st := awaitHTTP(t, fe3, jobs[0].ID, server.StateDone, 60*time.Second)
		if st.Stdout != ref.stdout || st.ExitCode != ref.code {
			t.Fatalf("verdict not byte-identical after dispatch+adopt kills:\n got: %q\nwant: %q", st.Stdout, ref.stdout)
		}
		// One backend attempt total across three frontend incarnations:
		// adoption, not re-dispatch.
		if n := len(listJobs(t, backend.base)); n != 1 {
			t.Fatalf("backend saw %d jobs across frontend restarts, want 1 (adoption must not re-run)", n)
		}
		evs := fleetEvents(t, fe3.base, jobs[0].ID)
		countVerdicts(t, evs, "dispatch+adopt-kill job")
		if !strings.Contains(eventTypeSeq(evs), "adopt") {
			t.Fatalf("event stream records no adoption: %s", eventTypeSeq(evs))
		}
	})

	t.Run("verdict", func(t *testing.T) {
		backend := startBackend(t)
		feDir := t.TempDir()
		fe1 := startFrontendProc(t, feDir, []string{fleet.CrashEnv + "=verdict:1"}, backend.base)
		postJob(t, fe1.base, spec)
		fe1.cmd.Wait() // dies the instant the verdict record is durable

		fe2 := startFrontendProc(t, feDir, nil, backend.base)
		t.Cleanup(func() { stopProc(t, fe2) })
		jobs := listJobs(t, fe2.base)
		if len(jobs) != 1 {
			t.Fatalf("frontend lists %d jobs, want 1", len(jobs))
		}
		st, ok := fe2.status(t, jobs[0].ID)
		if !ok || st.State != server.StateDone {
			t.Fatalf("job not done from replay alone: %+v (ok %v)", st, ok)
		}
		if st.Stdout != ref.stdout || st.ExitCode != ref.code {
			t.Fatalf("replayed verdict not byte-identical:\n got: %q\nwant: %q", st.Stdout, ref.stdout)
		}
		countVerdicts(t, fleetEvents(t, fe2.base, jobs[0].ID), "verdict-kill job")

		// Dedup collapse across the kill: an identical submit is served
		// from the replayed verdict without a new backend attempt.
		id2, err := postJob(t, fe2.base, spec)
		if err != nil {
			t.Fatal(err)
		}
		st2 := awaitHTTP(t, fe2, id2, server.StateDone, 30*time.Second)
		if st2.Stdout != ref.stdout {
			t.Fatalf("post-restart dedup verdict differs:\n got: %q\nwant: %q", st2.Stdout, ref.stdout)
		}
		if n := len(listJobs(t, backend.base)); n != 1 {
			t.Fatalf("backend saw %d jobs, want 1 (dedup must collapse across restarts)", n)
		}
	})
}

// TestFleetChaosFrontendKillAtLeaseExpiry covers the remaining commit
// point: the frontend dies immediately after journaling a lease
// expiry. The restarted frontend must treat the run as detached — no
// stale adoption of the dead backend — and re-dispatch it to the
// survivor for a byte-identical verdict.
func TestFleetChaosFrontendKillAtLeaseExpiry(t *testing.T) {
	drv := corpus.Drivers()[2] // openclos
	ref := refRun(t, drv)

	victim := startDaemon(t, t.TempDir(), "-retries", "5", "-retry-base", "10m", "-retry-max", "1h")
	victimDead := false
	t.Cleanup(func() {
		if !victimDead {
			stopProc(t, victim)
		}
	})
	clogVictim(t, victim)
	survivor := startBackend(t)

	feDir := t.TempDir()
	fe1 := startFrontendProc(t, feDir, []string{fleet.CrashEnv + "=lease:1"}, victim.base, survivor.base)
	id, err := postJob(t, fe1.base, server.JobSpec{Source: drv.Source, Spec: drv.Spec, Entry: drv.Entry})
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin starts at the victim; the job parks behind the clog.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, ok := fe1.status(t, id)
		if ok && st.Backend == victim.base {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never dispatched to the victim\nstderr:\n%s", fe1.errb.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	victim.cmd.Process.Signal(syscall.SIGKILL)
	victim.cmd.Wait()
	victimDead = true
	fe1.cmd.Wait() // dies as the lease-expired record commits

	fe2 := startFrontendProc(t, feDir, nil, victim.base, survivor.base)
	t.Cleanup(func() { stopProc(t, fe2) })
	st := awaitHTTP(t, fe2, id, server.StateDone, 60*time.Second)
	if st.Stdout != ref.stdout || st.ExitCode != ref.code {
		t.Fatalf("post-lease-kill verdict not byte-identical (exit %d, want %d):\n got: %q\nwant: %q",
			st.ExitCode, ref.code, st.Stdout, ref.stdout)
	}
	if st.Backend != survivor.base {
		t.Fatalf("run re-dispatched to %q, want the survivor %q", st.Backend, survivor.base)
	}
	evs := fleetEvents(t, fe2.base, id)
	countVerdicts(t, evs, "lease-kill job")
	if got, want := eventTypeSeq(evs), "admit dispatch lease dispatch verdict"; got != want {
		t.Fatalf("event stream = %q, want %q", got, want)
	}
}
