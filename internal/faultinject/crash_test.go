// Kill/resume chaos harness: builds the real slam binary, SIGKILLs it
// mid-commit via the deterministic checkpoint crash hook, resumes from
// the surviving journal and asserts the resumed run is byte-identical
// to an uninterrupted one — at every commit point, in full-frame and
// torn-frame variants, sequentially and at -j 8. The companion
// TestCorrupt* tests feed deliberately damaged journals (bit flips,
// truncation, wrong compatibility hash) back to slam and assert they
// are detected and recovered from — truncation to the last good record
// or a diagnosed cold start — never trusted into a wrong answer.
//
// Run via `make crash` and `make corrupt`.
package faultinject_test

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"

	"predabs/internal/checkpoint"
	"predabs/internal/corpus"
)

// maxKillPoints bounds the commit indices the matrix kills at. The
// drivers converge in 3 iterations (2 commit points); going one past
// that also exercises the "crash point never reached" path.
const maxKillPoints = 3

var slamBuild struct {
	once sync.Once
	dir  string
	path string
	err  error
}

// slamBin builds cmd/slam once per test process and returns the binary
// path. The re-exec design is the point of the harness: SIGKILL must
// hit a real process mid-fsync, not a goroutine we could unwind.
func slamBin(t *testing.T) string {
	t.Helper()
	slamBuild.once.Do(func() {
		dir, err := os.MkdirTemp("", "predabs-crash-")
		if err != nil {
			slamBuild.err = err
			return
		}
		slamBuild.dir = dir
		wd, _ := os.Getwd()
		build := exec.Command("go", "build", "-o", dir, "predabs/cmd/slam")
		build.Dir = filepath.Dir(filepath.Dir(wd)) // internal/faultinject -> repo root
		if out, err := build.CombinedOutput(); err != nil {
			slamBuild.err = fmt.Errorf("building slam: %v\n%s", err, out)
			return
		}
		slamBuild.path = filepath.Join(dir, "slam")
	})
	if slamBuild.err != nil {
		t.Fatal(slamBuild.err)
	}
	return slamBuild.path
}

func TestMain(m *testing.M) {
	code := m.Run()
	if slamBuild.dir != "" {
		os.RemoveAll(slamBuild.dir)
	}
	if predabsdBuild.dir != "" { // serve_chaos_test.go's daemon binary
		os.RemoveAll(predabsdBuild.dir)
	}
	os.Exit(code)
}

// slamRun is one process execution: stdout and stderr split (only
// stdout is part of the byte-identical contract; stderr carries resume
// and repair diagnostics), the exit code, and whether SIGKILL got it.
type slamRun struct {
	stdout, stderr string
	code           int
	killed         bool
}

func runSlam(t *testing.T, bin string, extraEnv []string, args ...string) slamRun {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), extraEnv...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	r := slamRun{stdout: out.String(), stderr: errb.String()}
	if ee, ok := err.(*exec.ExitError); ok {
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
			r.killed = ws.Signal() == syscall.SIGKILL
			r.code = -1
		} else {
			r.code = ee.ExitCode()
		}
	} else if err != nil {
		t.Fatalf("exec slam: %v", err)
	}
	return r
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func crashEnv(commit int, torn bool) []string {
	v := fmt.Sprintf("%s=%d", checkpoint.CrashEnv, commit)
	if torn {
		v += ":torn"
	}
	return []string{v}
}

// TestCrashResumeByteIdentical is the kill/resume matrix: every Table 1
// driver × every commit point × {full frame, torn frame} × {-j 1, -j 8}.
// The resumed run's stdout and exit code must match the uninterrupted
// reference exactly — including the error-path lines for the buggy
// floppy driver — which pins both the warm-started determinism and the
// counter bookkeeping across the process boundary.
func TestCrashResumeByteIdentical(t *testing.T) {
	bin := slamBin(t)
	for _, p := range corpus.Drivers() {
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			src := writeFile(t, dir, p.Name+".c", p.Source)
			spec := writeFile(t, dir, p.Name+".slic", p.Spec)

			ref := runSlam(t, bin, nil, "-spec", spec, "-entry", p.Entry, src)
			wantCode := 0
			if p.ExpectError {
				wantCode = 1
			}
			if ref.killed || ref.code != wantCode {
				t.Fatalf("reference run exit %d (killed=%t), want %d:\n%s%s",
					ref.code, ref.killed, wantCode, ref.stdout, ref.stderr)
			}

			for _, jobs := range []string{"1", "8"} {
				for commit := 1; commit <= maxKillPoints; commit++ {
					for _, torn := range []bool{false, true} {
						name := fmt.Sprintf("j%s-commit%d", jobs, commit)
						if torn {
							name += "-torn"
						}
						state := filepath.Join(t.TempDir(), "state")
						crash := runSlam(t, bin, crashEnv(commit, torn),
							"-state", state, "-spec", spec, "-entry", p.Entry, "-j", jobs, src)
						if !crash.killed {
							// Fewer commit points than the kill index: the
							// hook never fired and the run completed — it
							// must agree with the reference.
							if crash.stdout != ref.stdout || crash.code != ref.code {
								t.Errorf("%s: uninterrupted -state run diverged (exit %d):\n got: %s\nwant: %s",
									name, crash.code, crash.stdout, ref.stdout)
							}
							continue
						}

						args := []string{"-state", state, "-spec", spec, "-entry", p.Entry, "-j", jobs, src}
						if !torn {
							// A torn final frame may leave zero committed
							// iterations (commit 1), where -resume rightly
							// refuses; plain -state handles both.
							args = append([]string{"-resume"}, args...)
						}
						res := runSlam(t, bin, nil, args...)
						if res.killed {
							t.Fatalf("%s: resume run was killed", name)
						}
						if res.stdout != ref.stdout || res.code != ref.code {
							t.Errorf("%s: resumed run not byte-identical (exit %d, want %d):\n got: %q\nwant: %q\nstderr: %s",
								name, res.code, ref.code, res.stdout, ref.stdout, res.stderr)
						}
						if torn && !strings.Contains(res.stderr, "journal tail invalid") {
							t.Errorf("%s: torn tail was not diagnosed on resume; stderr:\n%s", name, res.stderr)
						}
					}
				}
			}
		})
	}
}

// TestCrashResumeNeverVerifiesBuggyProgram is the soundness oracle under
// crashes: no kill/resume schedule may launder the buggy program into
// "verified". The checkpoint only persists fully decided verdicts, so a
// resumed run must rediscover the same feasible error path.
func TestCrashResumeNeverVerifiesBuggyProgram(t *testing.T) {
	const buggy = `
void main(int x) {
  if (x > 3) {
    assert(x <= 3);
  }
}
`
	bin := slamBin(t)
	dir := t.TempDir()
	src := writeFile(t, dir, "buggy.c", buggy)

	ref := runSlam(t, bin, nil, "-entry", "main", src)
	if ref.code != 1 || !strings.Contains(ref.stdout, "error-found") {
		t.Fatalf("reference run must find the error (exit %d):\n%s", ref.code, ref.stdout)
	}

	for commit := 1; commit <= maxKillPoints; commit++ {
		for _, torn := range []bool{false, true} {
			state := filepath.Join(t.TempDir(), "state")
			crash := runSlam(t, bin, crashEnv(commit, torn), "-state", state, "-entry", "main", src)
			runs := []slamRun{crash}
			if crash.killed {
				runs = append(runs, runSlam(t, bin, nil, "-state", state, "-entry", "main", src))
			}
			for i, r := range runs {
				if r.killed {
					continue
				}
				if strings.Contains(r.stdout, "RESULT: verified") {
					t.Fatalf("commit %d torn=%t run %d: kill schedule verified a buggy program:\n%s",
						commit, torn, i, r.stdout)
				}
				if r.stdout != ref.stdout || r.code != ref.code {
					t.Errorf("commit %d torn=%t run %d: diverged from reference (exit %d):\n got: %q\nwant: %q",
						commit, torn, i, r.code, r.stdout, ref.stdout)
				}
			}
		}
	}
}

// journalFromCutRun produces a journal with committed state by letting a
// -maxiters 1 run stop early (the budget is outside the compatibility
// hash, so a full-budget run resumes from it).
func journalFromCutRun(t *testing.T, bin, spec, entry, src string) string {
	t.Helper()
	state := filepath.Join(t.TempDir(), "state")
	cut := runSlam(t, bin, nil, "-state", state, "-maxiters", "1", "-spec", spec, "-entry", entry, src)
	if cut.killed || cut.code != 2 {
		t.Fatalf("cut run: exit %d (killed=%t), want 2:\n%s%s", cut.code, cut.killed, cut.stdout, cut.stderr)
	}
	journal := filepath.Join(state, checkpoint.JournalName)
	if _, err := os.Stat(journal); err != nil {
		t.Fatal(err)
	}
	return state
}

func corruptJournal(t *testing.T, state string, mutate func([]byte) []byte) {
	t.Helper()
	journal := filepath.Join(state, checkpoint.JournalName)
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journal, mutate(raw), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptJournalColdStartsWithDiagnostic feeds slam journals whose
// prefix cannot be trusted — flipped magic, truncation into the header,
// and a compatibility-hash mismatch — and asserts each is rejected with
// a diagnostic and recovered from by a cold start that still reaches the
// reference verdict. Under -resume the same journals are a hard error,
// because -resume forbids cold starts.
func TestCorruptJournalColdStartsWithDiagnostic(t *testing.T) {
	bin := slamBin(t)
	p := corpus.Drivers()[1] // ioctl: a verified subject, 3 iterations
	dir := t.TempDir()
	src := writeFile(t, dir, p.Name+".c", p.Source)
	spec := writeFile(t, dir, p.Name+".slic", p.Spec)
	ref := runSlam(t, bin, nil, "-spec", spec, "-entry", p.Entry, src)
	if ref.code != 0 {
		t.Fatalf("reference run exit %d:\n%s", ref.code, ref.stdout)
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad-magic", func(raw []byte) []byte { raw[0] ^= 0xFF; return raw }},
		{"truncated-header", func(raw []byte) []byte { return raw[:10] }},
		{"empty-file", func(raw []byte) []byte { return nil }},
		{"wrong-hash", nil}, // journal for a different program, see below
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var state string
			if tc.mutate != nil {
				state = journalFromCutRun(t, bin, spec, p.Entry, src)
				corruptJournal(t, state, tc.mutate)
			} else {
				// A perfectly valid journal — for a different program: the
				// compatibility hash must reject it.
				other := corpus.Drivers()[2]
				osrc := writeFile(t, t.TempDir(), other.Name+".c", other.Source)
				state = journalFromCutRun(t, bin, spec, other.Entry, osrc)
			}

			// Plain -state: diagnosed cold start, reference verdict.
			res := runSlam(t, bin, nil, "-state", state, "-spec", spec, "-entry", p.Entry, src)
			if res.stdout != ref.stdout || res.code != ref.code {
				t.Errorf("cold start diverged (exit %d, want %d):\n got: %q\nwant: %q",
					res.code, ref.code, res.stdout, ref.stdout)
			}
			if !strings.Contains(res.stderr, "cold-starting with a fresh journal") {
				t.Errorf("rejected journal not diagnosed; stderr:\n%s", res.stderr)
			}

			// The cold start rewrote the journal; corrupt it again so the
			// -resume leg sees the damaged one.
			if tc.mutate != nil {
				corruptJournal(t, state, tc.mutate)
			} else {
				state = journalFromCutRun(t, bin, spec, corpus.Drivers()[2].Entry,
					writeFile(t, t.TempDir(), "other.c", corpus.Drivers()[2].Source))
			}
			res = runSlam(t, bin, nil, "-resume", "-state", state, "-spec", spec, "-entry", p.Entry, src)
			if res.code != 1 {
				t.Errorf("-resume on a rejected journal: exit %d, want 1:\n%s%s", res.code, res.stdout, res.stderr)
			}
			if !strings.Contains(res.stderr, "-resume forbids a cold start") {
				t.Errorf("-resume rejection not diagnosed; stderr:\n%s", res.stderr)
			}
		})
	}
}

// TestCorruptJournalBitFlipSweep flips one bit at offsets swept across a
// committed journal and re-runs slam against each damaged copy. Whatever
// the flip hits — magic, header, a record length, a CRC, cache payload —
// the run must end in the reference verdict, byte-identical: either the
// tail is truncated back to the last intact record (repair diagnostic)
// or the whole journal is rejected (cold-start diagnostic). A flip that
// silently survives into a wrong answer fails the sweep.
func TestCorruptJournalBitFlipSweep(t *testing.T) {
	bin := slamBin(t)
	p := corpus.Drivers()[1] // ioctl
	dir := t.TempDir()
	src := writeFile(t, dir, p.Name+".c", p.Source)
	spec := writeFile(t, dir, p.Name+".slic", p.Spec)
	ref := runSlam(t, bin, nil, "-spec", spec, "-entry", p.Entry, src)
	if ref.code != 0 {
		t.Fatalf("reference run exit %d:\n%s", ref.code, ref.stdout)
	}

	pristineState := journalFromCutRun(t, bin, spec, p.Entry, src)
	pristine, err := os.ReadFile(filepath.Join(pristineState, checkpoint.JournalName))
	if err != nil {
		t.Fatal(err)
	}

	// A deterministic sweep: every region of the file gets hit without
	// running the journal's length in executions.
	step := len(pristine)/24 + 1
	for off := 0; off < len(pristine); off += step {
		off := off
		t.Run(fmt.Sprintf("offset%d", off), func(t *testing.T) {
			t.Parallel()
			state := filepath.Join(t.TempDir(), "state")
			if err := os.MkdirAll(state, 0o755); err != nil {
				t.Fatal(err)
			}
			raw := append([]byte(nil), pristine...)
			raw[off] ^= 1 << (off % 8)
			if err := os.WriteFile(filepath.Join(state, checkpoint.JournalName), raw, 0o644); err != nil {
				t.Fatal(err)
			}
			res := runSlam(t, bin, nil, "-state", state, "-spec", spec, "-entry", p.Entry, src)
			if res.stdout != ref.stdout || res.code != ref.code {
				t.Errorf("bit flip at %d led to a divergent answer (exit %d, want %d):\n got: %q\nwant: %q\nstderr: %s",
					off, res.code, ref.code, res.stdout, ref.stdout, res.stderr)
			}
			diagnosed := strings.Contains(res.stderr, "cold-starting with a fresh journal") ||
				strings.Contains(res.stderr, "journal tail invalid")
			if !diagnosed {
				// The flip may land in bytes replay never re-reads (it
				// stops at the last intact record boundary) — but then the
				// replayed state must have been fully intact, which the
				// byte-identical check above already enforced.
				t.Logf("bit flip at %d produced no diagnostic (replay stopped before it)", off)
			}
		})
	}
}
